//! The exploration driver: depth-first search over decision paths.
//!
//! Each execution follows a recorded *prefix* of decisions and
//! extends it with default (option 0) choices; after a passing
//! execution the deepest non-exhausted decision is advanced and the
//! search re-runs. With a preemption bound `p` (CHESS-style: only
//! switches away from a thread that could have continued count) the
//! state space is small enough to exhaust for the intended programs
//! — a handful of threads, a handful of operations each.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::exec::{run_thread, Choice, ChoiceKind, ExecCfg, Execution, Failure};

/// Result of a [`Checker`] search.
#[derive(Debug)]
pub enum Outcome {
    /// No failing interleaving found.
    Pass {
        /// Number of executions explored.
        executions: u64,
        /// `true` iff the decision tree was exhausted; `false` means
        /// the search stopped at an execution/time cap and weaker
        /// guarantees apply.
        complete: bool,
    },
    /// A failing interleaving was found.
    Fail {
        /// Number of executions explored, failing one included.
        executions: u64,
        /// What went wrong (assertion message, deadlock, livelock…).
        message: String,
        /// Replayable schedule string — feed to [`replay`] or the
        /// `LWT_MODEL_REPLAY` environment variable.
        schedule: String,
        /// Human-readable event trace of the failing execution.
        trace: String,
    },
}

impl Outcome {
    /// Render a full failure report (message, trace, replay line).
    /// Empty string for passes.
    pub fn report(&self) -> String {
        match self {
            Outcome::Pass { .. } => String::new(),
            Outcome::Fail { executions, message, schedule, trace } => format!(
                "lwt-model: failing interleaving found (execution #{})\n\
                 \n{}\n\
                 --- trace ---------------------------------------------------\n\
                 {}\
                 --- replay --------------------------------------------------\n\
                 LWT_MODEL_REPLAY=\"{}\"\n",
                executions, message, trace, schedule
            ),
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Configurable model-checking session.
///
/// Defaults (each overridable by environment variable):
///
/// | knob | env | default |
/// |---|---|---|
/// | preemption bound | `LWT_MODEL_PREEMPTIONS` | 2 |
/// | step budget per execution | `LWT_MODEL_STEPS` | 20 000 |
/// | execution cap | `LWT_MODEL_MAX_EXECS` | 1 000 000 |
/// | wall-clock cap | `LWT_MODEL_TIME_MS` | 60 000 |
///
/// Setting `LWT_MODEL_REPLAY="<schedule>"` makes [`Checker::run`]
/// execute exactly one interleaving — the one a failure report
/// printed — instead of searching.
pub struct Checker {
    preemption_bound: u32,
    max_steps: u64,
    max_execs: u64,
    time_budget: Duration,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: env_u64("LWT_MODEL_PREEMPTIONS", 2) as u32,
            max_steps: env_u64("LWT_MODEL_STEPS", 20_000),
            max_execs: env_u64("LWT_MODEL_MAX_EXECS", 1_000_000),
            time_budget: Duration::from_millis(env_u64("LWT_MODEL_TIME_MS", 60_000)),
        }
    }
}

impl Checker {
    /// A checker with the documented defaults.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Set the preemption bound (see crate docs; ≥ 2 recommended).
    pub fn preemptions(mut self, p: u32) -> Checker {
        self.preemption_bound = p;
        self
    }

    /// Set the per-execution step budget (livelock backstop).
    pub fn steps(mut self, s: u64) -> Checker {
        self.max_steps = s;
        self
    }

    /// Cap the number of executions explored.
    pub fn max_executions(mut self, n: u64) -> Checker {
        self.max_execs = n;
        self
    }

    /// Cap the wall-clock search time.
    pub fn time_budget_ms(mut self, ms: u64) -> Checker {
        self.time_budget = Duration::from_millis(ms);
        self
    }

    /// Explore interleavings of `f` until the tree is exhausted, a
    /// failure is found, or a cap is hit.
    pub fn run<F>(&self, f: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        if let Ok(s) = std::env::var("LWT_MODEL_REPLAY") {
            if !s.is_empty() {
                let prefix = parse_schedule(&s)
                    .unwrap_or_else(|| panic!("unparseable LWT_MODEL_REPLAY: {:?}", s));
                let (_, failure) = self.run_one(f, prefix);
                return match failure {
                    Some(fl) => Outcome::Fail {
                        executions: 1,
                        message: fl.message,
                        schedule: format_schedule(&fl.schedule),
                        trace: fl.trace,
                    },
                    None => Outcome::Pass { executions: 1, complete: false },
                };
            }
        }
        let start = Instant::now();
        let mut prefix = Vec::new();
        let mut execs = 0u64;
        loop {
            execs += 1;
            let (mut path, failure) = self.run_one(f.clone(), prefix);
            if let Some(fl) = failure {
                return Outcome::Fail {
                    executions: execs,
                    message: fl.message,
                    schedule: format_schedule(&fl.schedule),
                    trace: fl.trace,
                };
            }
            // Backtrack: advance the deepest non-exhausted decision.
            loop {
                match path.pop() {
                    None => return Outcome::Pass { executions: execs, complete: true },
                    Some(c) if (c.chosen as usize) + 1 < c.n as usize => {
                        path.push(Choice { chosen: c.chosen + 1, ..c });
                        break;
                    }
                    Some(_) => {}
                }
            }
            prefix = path;
            if execs >= self.max_execs || start.elapsed() >= self.time_budget {
                return Outcome::Pass { executions: execs, complete: false };
            }
        }
    }

    /// Like [`Checker::run`] but panics with a full report if a
    /// failing interleaving is found — the convenient form for
    /// `#[test]` functions.
    pub fn check<F>(&self, f: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let outcome = self.run(f);
        match &outcome {
            Outcome::Fail { .. } => panic!("{}", outcome.report()),
            Outcome::Pass { executions, complete } => {
                if !*complete {
                    eprintln!(
                        "lwt-model: search capped after {} executions (pass so far, \
                         not exhaustive)",
                        executions
                    );
                }
            }
        }
        outcome
    }

    fn run_one<F>(&self, f: Arc<F>, prefix: Vec<Choice>) -> (Vec<Choice>, Option<Failure>)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let exec = Execution::new(
            ExecCfg { preemption_bound: self.preemption_bound, max_steps: self.max_steps },
            prefix,
        );
        exec.register_root();
        let slot = Arc::new(Mutex::new(None::<std::thread::Result<()>>));
        let done = Arc::new(AtomicBool::new(false));
        let (e2, s2, d2) = (exec.clone(), slot.clone(), done.clone());
        let os = std::thread::Builder::new()
            .name("lwt-model-0".to_string())
            .spawn(move || run_thread(e2, 0, s2, d2, move || f()))
            .expect("failed to spawn model root thread");
        exec.wait_all_finished();
        // Full OS join of the root: by the join-before-return rule it
        // transitively waits out every model thread *and* their TLS
        // destructors, so no state leaks into the next execution.
        let _ = os.join();
        (exec.recorded_path(), exec.take_failure())
    }
}

/// One-line exhaustive check with default bounds; panics with a
/// replayable report on failure. The `#[test]` workhorse.
pub fn check<F>(f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f)
}

/// Re-execute a single recorded interleaving (from a failure
/// report's `schedule` / `LWT_MODEL_REPLAY` line) and return the
/// outcome. Panics on an unparseable schedule string.
pub fn replay<F>(schedule: &str, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let prefix =
        parse_schedule(schedule).unwrap_or_else(|| panic!("unparseable schedule: {:?}", schedule));
    let checker = Checker::new();
    let f = Arc::new(f);
    // A panic inside the replayed execution is converted into a
    // Failure by the engine, so catch-free invocation is fine; but
    // the run itself may also panic on internal errors — surface as
    // a Fail either way.
    let result = catch_unwind(AssertUnwindSafe(|| checker.run_one(f, prefix)));
    match result {
        Ok((_, Some(fl))) => Outcome::Fail {
            executions: 1,
            message: fl.message,
            schedule: format_schedule(&fl.schedule),
            trace: fl.trace,
        },
        Ok((_, None)) => Outcome::Pass { executions: 1, complete: false },
        Err(p) => std::panic::resume_unwind(p),
    }
}

pub(crate) fn format_schedule(path: &[Choice]) -> String {
    let mut out = String::new();
    for (i, c) in path.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let k = match c.kind {
            ChoiceKind::Sched => 's',
            ChoiceKind::Value => 'v',
        };
        out.push(k);
        out.push_str(&format!("{}/{}", c.chosen, c.n));
    }
    out
}

pub(crate) fn parse_schedule(s: &str) -> Option<Vec<Choice>> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (kind, rest) = match part.as_bytes()[0] {
            b's' => (ChoiceKind::Sched, &part[1..]),
            b'v' => (ChoiceKind::Value, &part[1..]),
            _ => return None,
        };
        let (chosen, n) = match rest.split_once('/') {
            Some((c, n)) => (c.parse().ok()?, n.parse().ok()?),
            None => (rest.parse().ok()?, 0),
        };
        out.push(Choice { chosen, n, kind });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips() {
        let path = vec![
            Choice { chosen: 0, n: 3, kind: ChoiceKind::Sched },
            Choice { chosen: 2, n: 4, kind: ChoiceKind::Value },
            Choice { chosen: 1, n: 2, kind: ChoiceKind::Sched },
        ];
        let s = format_schedule(&path);
        assert_eq!(s, "s0/3,v2/4,s1/2");
        let back = parse_schedule(&s).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[1].chosen, 2);
        assert_eq!(back[1].n, 4);
        assert!(matches!(back[1].kind, ChoiceKind::Value));
        // Bare indices (hand-written schedules) parse too.
        let loose = parse_schedule("s1,v0").unwrap();
        assert_eq!(loose[0].n, 0);
    }
}
