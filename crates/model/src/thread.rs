//! Thread shim: `spawn`, `yield_now`, and a joinable handle.
//!
//! Model threads are real OS threads, but only one runs at a time —
//! the engine's baton serializes them, and spawn/join/yield are all
//! schedule points. Every spawned thread **must** be joined before
//! the model closure returns (the engine fails the execution
//! otherwise); this is what lets the driver guarantee that TLS
//! destructors from one execution never leak into the next, which
//! matters for code with thread-exit hooks like the fiber stack
//! cache.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::exec::{current, free_run_yield, run_thread, Abort, Execution};

/// Handle to a spawned model thread; see [`spawn`].
pub struct JoinHandle<T> {
    os: Option<std::thread::JoinHandle<()>>,
    slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    done: Arc<AtomicBool>,
    model: Option<(Arc<Execution>, usize)>,
}

/// Spawn a model thread. Drop-in for [`std::thread::spawn`] within
/// model-checked code; outside an execution it degrades to a real
/// thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(Mutex::new(None));
    let done = Arc::new(AtomicBool::new(false));
    if let Some((exec, me)) = current() {
        if !exec.is_aborted() {
            let tid = exec.spawn_thread(me);
            let (e2, s2, d2) = (exec.clone(), slot.clone(), done.clone());
            let os = std::thread::Builder::new()
                .name(format!("lwt-model-{}", tid))
                .spawn(move || run_thread(e2, tid, s2, d2, f))
                .expect("failed to spawn model thread");
            return JoinHandle { os: Some(os), slot, done, model: Some((exec, tid)) };
        }
    }
    let (s2, d2) = (slot.clone(), done.clone());
    let os = std::thread::Builder::new()
        .name("lwt-model-free".to_string())
        .spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(f));
            *s2.lock().unwrap() = Some(r);
            d2.store(true, Ordering::SeqCst);
        })
        .expect("failed to spawn thread");
    JoinHandle { os: Some(os), slot, done, model: None }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result,
    /// propagating panics like [`std::thread::JoinHandle::join`]
    /// does — except that model failures unwind instead of returning
    /// `Err`, since the checker harvests them itself.
    pub fn join(mut self) -> T {
        let scheduled = match (current(), &self.model) {
            (Some((exec, me)), Some((_, tid))) => exec.join_wait(me, *tid),
            _ => false,
        };
        if !scheduled && current().is_some() {
            // Free-running (post-abort): spin politely until the
            // target's wrapper has published its result.
            while !self.done.load(Ordering::SeqCst) {
                free_run_yield();
            }
        }
        // Full OS join: waits out TLS destructors too, so effects
        // like the fiber cache's exit-time donation are ordered
        // before this join returns — matching std semantics.
        let os = self.os.take().expect("thread already joined");
        let _ = os.join();
        let r = self.slot.lock().unwrap().take();
        match r {
            Some(Ok(v)) => v,
            Some(Err(p)) => std::panic::resume_unwind(p),
            None => std::panic::panic_any(Abort),
        }
    }

    /// Whether the thread has published its result (its TLS
    /// destructors may still be running).
    pub fn is_finished(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }
}

/// Yield the model scheduler (drop-in for
/// [`std::thread::yield_now`]): a free switch to another runnable
/// thread, explored like any other decision.
pub fn yield_now() {
    crate::sync::yield_like()
}
