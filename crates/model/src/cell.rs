//! Interior-mutability shim.
//!
//! v1 is a transparent pass-through: it does **not** detect data
//! races on the cell contents. That is deliberate — the Chase-Lev
//! deque's speculative slot read is an intentional benign race (the
//! value is discarded when the subsequent CAS fails), and a checked
//! cell would flag it on every steal. Atomic-ordering bugs are still
//! caught through the value histories of the shim atomics guarding
//! the cells.

/// Drop-in for [`std::cell::UnsafeCell`] in model-checked code.
#[repr(transparent)]
#[derive(Default)]
pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

// Mirror std's auto-traits exactly: the wrapper adds nothing.
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Construct a cell holding `value`.
    pub const fn new(value: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    /// Unwrap the cell, returning the contents.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Raw pointer to the contents; same contract as
    /// [`std::cell::UnsafeCell::get`].
    pub const fn get(&self) -> *mut T {
        self.0.get()
    }

    /// Exclusive reference to the contents.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}
