//! Fixed-width vector clocks.
//!
//! Every model thread carries a [`VClock`]; every recorded store is
//! stamped with the storing thread's clock at the time of the store.
//! Happens-before between operations is exactly `stamp ⊑ clock`
//! (pointwise ≤), which is all the weak-memory simulation in
//! `exec.rs` needs: a thread may read any store in a location's
//! history that is not hidden by a *newer* store it already
//! happens-after.

use crate::exec::MAX_THREADS;

/// A vector clock over the (bounded) set of model threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct VClock([u32; MAX_THREADS]);

impl VClock {
    /// Pointwise maximum: after `self.join(o)`, everything that
    /// happened-before `o` also happens-before `self`.
    pub(crate) fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// `self ⊑ other` — true iff every component of `self` is ≤ the
    /// matching component of `other` (i.e. `self` happens-before or
    /// equals `other`'s knowledge).
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Advance this thread's own component (one tick per operation).
    pub(crate) fn bump(&mut self, tid: usize) {
        self.0[tid] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_leq_orders() {
        let mut a = VClock::default();
        let mut b = VClock::default();
        a.bump(0);
        a.bump(0);
        b.bump(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a;
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        b.join(&a);
        assert_eq!(b, j);
    }
}
