//! Spin-hint shim.

/// Drop-in for [`std::hint::spin_loop`] in model-checked code.
///
/// A spin iteration is only meaningful if some *other* thread can
/// run, so the model treats it exactly like a yield: a free switch
/// away from the spinner. This bounds spin loops (a spinner whose
/// condition can never be satisfied ends up exhausting the step
/// budget and is reported as a livelock) instead of burning the
/// search on millions of no-op iterations.
pub fn spin_loop() {
    crate::sync::yield_like()
}
