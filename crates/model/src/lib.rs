//! # lwt-model — a deterministic concurrency model checker
//!
//! A hermetic, zero-dependency, loom-style checker for the lock-free
//! core of this workspace. Small concurrent programs written against
//! the shim types ([`sync::atomic`], [`cell::UnsafeCell`],
//! [`sync::Mutex`], [`thread::spawn`]) are executed under a
//! controlled scheduler that *exhaustively* explores
//!
//! * **thread interleavings** — every shim operation is a schedule
//!   point; a depth-bounded DFS with CHESS-style preemption bounding
//!   walks the decision tree, and
//! * **weak-memory behaviors** — each atomic location keeps its full
//!   store history with vector-clock stamps, and a load may observe
//!   any store that happens-before allows, so stale reads that real
//!   hardware can produce are explored too (the model is strictly
//!   *stronger* than C11 where they differ, so it never reports a
//!   behavior C11 forbids).
//!
//! Failing interleavings are reported with a human-readable event
//! trace and a **replayable schedule string**: re-run the exact
//! interleaving with [`replay`] or `LWT_MODEL_REPLAY="…"`.
//!
//! The real `lwt-sync`/`lwt-sched`/`lwt-fiber` structures — not
//! rewrites — are checked by compiling the workspace with
//! `RUSTFLAGS="--cfg lwt_model"`, which switches their internal
//! `sysapi` facades onto these shims (the same trick loom uses).
//! The suites live in `crates/model/tests/`; see
//! `crates/model/README.md` for how to write one and how to read a
//! failure.
//!
//! ## Example
//!
//! A store/load race on two locations — the classic demonstration
//! that both orders and stale reads are explored:
//!
//! ```
//! use lwt_model::sync::atomic::{AtomicUsize, Ordering};
//! use lwt_model::{thread, Checker, Outcome};
//! use std::sync::Arc;
//!
//! let outcome = Checker::new().max_executions(10_000).run(|| {
//!     let a = Arc::new(AtomicUsize::new(0));
//!     let b = a.clone();
//!     let t = thread::spawn(move || b.store(1, Ordering::Release));
//!     let seen = a.load(Ordering::Acquire);
//!     assert!(seen == 0 || seen == 1);
//!     t.join();
//! });
//! assert!(matches!(outcome, Outcome::Pass { complete: true, .. }));
//! ```

#![warn(missing_docs)]

mod clock;
mod exec;
mod explore;

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub use explore::{check, replay, Checker, Outcome};
