//! The execution engine: runs one interleaving of a model program.
//!
//! Model threads are real OS threads serialized by a baton: exactly
//! one thread is `active` at a time, and it hands the baton over only
//! at *schedule points* (every shim atomic op, `yield_now`, blocking
//! join, thread exit). At each schedule point the engine consults the
//! DFS decision path recorded by the explorer — replaying the chosen
//! prefix and extending it with default (first-option) decisions —
//! so a given decision path always reproduces the same interleaving.
//!
//! ## Weak-memory simulation
//!
//! Besides scheduling, loads are decision points too. Each atomic
//! location keeps its full store history; a load may observe any
//! store not hidden from the loading thread by happens-before
//! (tracked with vector clocks) or by that thread's own previous
//! reads (per-location observation floors, which also give us
//! per-location coherence). `SeqCst` operations and fences join a
//! global `sc` clock in both directions, which makes the model
//! *stronger* than C11 `SeqCst` semantics — the checker can miss
//! exotic weak behaviors but never reports one that C11 forbids,
//! i.e. no false positives from the memory model. See
//! `crates/model/README.md` for the full contract.
//!
//! ## Failure and free-running
//!
//! On a failure (assertion panic in the program, deadlock, livelock
//! step budget, replay divergence) the engine records the decision
//! path plus a rendered event trace, flips `aborted`, and releases
//! every thread to *free-run*: shim ops stop consulting the engine
//! and hit the real primitives so all threads can unwind and exit,
//! letting the driver harvest the failure.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AOrd};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;

/// Upper bound on threads in one model execution (root included).
/// Small programs are the point: state space is exponential in both
/// threads and operations.
pub(crate) const MAX_THREADS: usize = 8;

/// How many consecutive *stale* (non-latest) reads of one location a
/// single thread may make before the engine forces it to observe the
/// latest store. Without this cap, spin loops that re-read a stale
/// value forever (e.g. polling an empty-queue null) would livelock
/// the search; real hardware propagates stores in finite time, so
/// bounding staleness loses no interesting behavior.
const STALE_CAP: u32 = 2;

/// Free-run escape hatch: after this many free-run yields a thread
/// assumes the program can make no progress without the (now aborted)
/// scheduler and unwinds with [`Abort`].
const FREE_RUN_YIELD_CAP: u32 = 200_000;

/// Panic payload used to unwind model threads after an abort. The
/// thread wrapper recognizes and swallows it.
pub(crate) struct Abort;

/// Sequencing decisions recorded on the DFS path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ChoiceKind {
    /// Which thread runs next (index into the options list).
    Sched,
    /// Which store a load observes (0 = newest candidate).
    Value,
}

/// One node of the decision path: `chosen` out of `n` options.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub chosen: u16,
    pub n: u16,
    pub kind: ChoiceKind,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Voluntarily yielded; the scheduler must prefer someone else.
    Yielded,
    /// Waiting for the given thread to finish.
    Blocked(usize),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    /// Per-location index of the newest store this thread has
    /// observed (coherence floor: it may never read older again).
    obs: HashMap<u32, usize>,
    /// Per-location count of consecutive stale reads (see STALE_CAP).
    stale: HashMap<u32, u32>,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        ThreadState { status: Status::Runnable, clock, obs: HashMap::new(), stale: HashMap::new() }
    }
}

struct StoreRec {
    value: u64,
    /// Storing thread's clock at the store — the happens-before stamp.
    stamp: VClock,
    /// For release-ish stores (and RMWs continuing a release
    /// sequence): the clock an acquire-load of this store joins.
    release: Option<VClock>,
}

struct Location {
    name: &'static str,
    stores: Vec<StoreRec>,
}

/// Identifies one shim atomic: its address plus a per-object token
/// cell the engine uses to detect address reuse (a freed atomic's
/// address being recycled for a new one must not inherit history).
pub(crate) struct LocKey<'a> {
    pub addr: usize,
    pub token: &'a AtomicU64,
    pub name: &'static str,
}

/// Trace events, rendered into the failure report.
enum Ev {
    Load { tid: usize, loc: u32, value: u64, stale: bool },
    Store { tid: usize, loc: u32, value: u64 },
    Rmw { tid: usize, loc: u32, old: u64, new: u64 },
    CasFail { tid: usize, loc: u32, expect: u64, found: u64 },
    Fence { tid: usize },
    Yield { tid: usize },
    Switch { to: usize, preempt: bool },
    Spawn { tid: usize, child: usize },
    JoinWait { tid: usize, target: usize },
    Finish { tid: usize },
    MutexLock { tid: usize, loc: u32 },
    MutexUnlock { tid: usize, loc: u32 },
}

pub(crate) struct Failure {
    pub message: String,
    pub schedule: Vec<Choice>,
    pub trace: String,
}

pub(crate) struct ExecCfg {
    pub preemption_bound: u32,
    pub max_steps: u64,
}

struct ExecInner {
    threads: Vec<ThreadState>,
    active: usize,
    /// DFS decision path: replayed prefix + default extensions.
    path: Vec<Choice>,
    cursor: usize,
    preemptions: u32,
    steps: u64,
    /// addr -> (token, loc id); see [`LocKey`].
    loc_ids: HashMap<usize, (u64, u32)>,
    locs: Vec<Location>,
    next_token: u64,
    /// Global SeqCst clock: every SC op and fence joins it both ways.
    sc: VClock,
    trace: Vec<Ev>,
    failure: Option<Failure>,
    finished: usize,
    /// Depth of sysapi::Mutex critical sections per thread; model ops
    /// inside one are unsupported (see `mutex_lock`).
    in_critical: [u32; MAX_THREADS],
}

pub(crate) struct Execution {
    cfg: ExecCfg,
    m: Mutex<ExecInner>,
    cv: Condvar,
    aborted: AtomicBool,
}

// ---------------------------------------------------------------------------
// Current-thread context

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
    static FREE_YIELDS: RefCell<u32> = const { RefCell::new(0) };
}

/// The executing model thread's engine handle, or `None` when the
/// calling OS thread is not part of a model execution (shims then
/// fall through to the real primitives).
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

struct CurrentGuard;

impl CurrentGuard {
    fn set(exec: Arc<Execution>, tid: usize) -> CurrentGuard {
        CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
        CurrentGuard
    }
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Yield while free-running (after abort, or from a finished thread's
/// TLS destructors). Panics with [`Abort`] once it is clear the
/// program cannot progress without the scheduler.
pub(crate) fn free_run_yield() {
    let n = FREE_YIELDS.with(|c| {
        let mut b = c.borrow_mut();
        *b += 1;
        *b
    });
    if n > FREE_RUN_YIELD_CAP {
        std::panic::panic_any(Abort);
    }
    std::thread::yield_now();
}

fn is_acq(o: AOrd) -> bool {
    matches!(o, AOrd::Acquire | AOrd::AcqRel | AOrd::SeqCst)
}

fn is_rel(o: AOrd) -> bool {
    matches!(o, AOrd::Release | AOrd::AcqRel | AOrd::SeqCst)
}

fn fmt_val(v: u64) -> String {
    if v > 0xffff_ffff {
        format!("{:#x}", v)
    } else {
        format!("{}", v)
    }
}

// ---------------------------------------------------------------------------
// Engine

enum Mode {
    /// Ordinary op: continuing is an option, switching costs a preemption.
    Continue,
    /// Voluntary yield: switching is free and preferred.
    Yield,
    /// Blocked on a join: must switch.
    Block(usize),
}

impl Execution {
    pub(crate) fn new(cfg: ExecCfg, prefix: Vec<Choice>) -> Arc<Execution> {
        Arc::new(Execution {
            cfg,
            m: Mutex::new(ExecInner {
                threads: Vec::new(),
                active: 0,
                path: prefix,
                cursor: 0,
                preemptions: 0,
                steps: 0,
                loc_ids: HashMap::new(),
                locs: Vec::new(),
                next_token: 1,
                sc: VClock::default(),
                trace: Vec::new(),
                failure: None,
                finished: 0,
                in_critical: [0; MAX_THREADS],
            }),
            cv: Condvar::new(),
            aborted: AtomicBool::new(false),
        })
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(AOrd::Relaxed)
    }

    fn fail(&self, g: &mut MutexGuard<'_, ExecInner>, message: String) {
        if g.failure.is_none() {
            let trace = render_trace(&g.trace, &g.locs);
            let schedule = g.path[..g.cursor].to_vec();
            g.failure = Some(Failure { message, schedule, trace });
        }
        self.aborted.store(true, AOrd::SeqCst);
        self.cv.notify_all();
    }

    /// Record a failure from outside a schedule point (user panic).
    pub(crate) fn fail_external(&self, message: String) {
        let mut g = self.m.lock().unwrap();
        self.fail(&mut g, message);
    }

    pub(crate) fn take_failure(&self) -> Option<Failure> {
        self.m.lock().unwrap().failure.take()
    }

    pub(crate) fn recorded_path(&self) -> Vec<Choice> {
        self.m.lock().unwrap().path.clone()
    }

    // -- decision path ------------------------------------------------------

    fn decide(
        &self,
        g: &mut MutexGuard<'_, ExecInner>,
        n: usize,
        kind: ChoiceKind,
    ) -> Option<usize> {
        debug_assert!(n >= 2);
        if g.cursor < g.path.len() {
            let c = g.path[g.cursor];
            if c.kind != kind || (c.n != 0 && c.n as usize != n) || (c.chosen as usize) >= n {
                self.fail(
                    g,
                    format!(
                        "replay divergence at decision {}: recorded {:?} {}/{} but live \
                         execution offers {:?} with {} options — the program is \
                         nondeterministic outside the model (wall-clock, addresses, \
                         un-shimmed synchronization?)",
                        g.cursor, c.kind, c.chosen, c.n, kind, n
                    ),
                );
                return None;
            }
            g.cursor += 1;
            Some(c.chosen as usize)
        } else {
            g.path.push(Choice { chosen: 0, n: n as u16, kind });
            g.cursor += 1;
            Some(0)
        }
    }

    // -- scheduling ---------------------------------------------------------

    /// Schedule point. Returns the guard with the baton (re)held by
    /// `tid`, or `None` if the execution aborted (caller free-runs).
    fn schedule_point<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecInner>,
        tid: usize,
        mode: Mode,
    ) -> Option<MutexGuard<'a, ExecInner>> {
        g.steps += 1;
        if g.steps > self.cfg.max_steps {
            self.fail(
                &mut g,
                format!(
                    "step budget ({}) exceeded — livelock, or raise LWT_MODEL_STEPS",
                    self.cfg.max_steps
                ),
            );
            return None;
        }

        let eligible: Vec<usize> = (0..g.threads.len())
            .filter(|&t| {
                t != tid && matches!(g.threads[t].status, Status::Runnable | Status::Yielded)
            })
            .collect();

        let (options, free_switch): (Vec<usize>, bool) = match mode {
            Mode::Continue => {
                if !eligible.is_empty() && g.preemptions < self.cfg.preemption_bound {
                    let mut o = vec![tid];
                    o.extend_from_slice(&eligible);
                    (o, false)
                } else {
                    (vec![tid], false)
                }
            }
            Mode::Yield => {
                g.threads[tid].status = Status::Yielded;
                if eligible.is_empty() {
                    (vec![tid], true)
                } else {
                    (eligible, true)
                }
            }
            Mode::Block(target) => {
                g.threads[tid].status = Status::Blocked(target);
                if eligible.is_empty() {
                    self.fail(
                        &mut g,
                        format!(
                            "deadlock: thread {} blocked joining thread {} with no \
                             runnable thread left",
                            tid, target
                        ),
                    );
                    return None;
                }
                (eligible, true)
            }
        };

        let idx = if options.len() > 1 {
            self.decide(&mut g, options.len(), ChoiceKind::Sched)?
        } else {
            0
        };
        let next = options[idx];

        if next == tid {
            g.threads[tid].status = Status::Runnable;
            return Some(g);
        }

        if !free_switch {
            // Preempting a thread that could have continued.
            g.preemptions += 1;
        }
        if matches!(mode, Mode::Continue) {
            g.threads[tid].status = Status::Runnable;
        }
        g.threads[next].status = Status::Runnable;
        g.active = next;
        g.trace.push(Ev::Switch { to: next, preempt: !free_switch });
        self.cv.notify_all();
        self.wait_for_baton(g, tid)
    }

    fn wait_for_baton<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecInner>,
        tid: usize,
    ) -> Option<MutexGuard<'a, ExecInner>> {
        loop {
            if self.is_aborted() {
                return None;
            }
            if g.active == tid && matches!(g.threads[tid].status, Status::Runnable) {
                return Some(g);
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Common prologue for every shim operation: bail to free-run if
    /// appropriate, take a schedule point, tick the thread's clock.
    fn op_entry(&self, tid: usize) -> Option<MutexGuard<'_, ExecInner>> {
        if self.is_aborted() {
            return None;
        }
        let g = self.m.lock().unwrap();
        if matches!(g.threads[tid].status, Status::Finished) {
            // TLS destructors running after thread exit free-run.
            return None;
        }
        if g.in_critical[tid] > 0 {
            let mut g = g;
            self.fail(
                &mut g,
                format!(
                    "thread {} performed a model op inside a sysapi::Mutex critical \
                     section — unsupported in v1 (would deadlock TLS destructors); \
                     keep Mutex-protected sections free of shim atomics",
                    tid
                ),
            );
            return None;
        }
        let mut g = self.schedule_point(g, tid, Mode::Continue)?;
        g.threads[tid].clock.bump(tid);
        Some(g)
    }

    // -- locations ----------------------------------------------------------

    fn loc_of(&self, g: &mut MutexGuard<'_, ExecInner>, key: &LocKey<'_>, current: u64) -> u32 {
        let tok = key.token.load(AOrd::Relaxed);
        if tok != 0 {
            if let Some(&(etok, lid)) = g.loc_ids.get(&key.addr) {
                if etok == tok {
                    return lid;
                }
            }
        }
        // First touch this execution, or the address was recycled by
        // a newer atomic: (re)register with a fresh history seeded
        // from the real value. The init store has an empty stamp so
        // every thread may observe it.
        let tok = if tok == 0 {
            let t = g.next_token;
            g.next_token += 1;
            key.token.store(t, AOrd::Relaxed);
            t
        } else {
            tok
        };
        let lid = g.locs.len() as u32;
        g.locs.push(Location {
            name: key.name,
            stores: vec![StoreRec { value: current, stamp: VClock::default(), release: None }],
        });
        g.loc_ids.insert(key.addr, (tok, lid));
        lid
    }

    fn sc_join(g: &mut MutexGuard<'_, ExecInner>, tid: usize) {
        let clock = g.threads[tid].clock;
        g.sc.join(&clock);
        let sc = g.sc;
        g.threads[tid].clock.join(&sc);
    }

    // -- atomic ops ---------------------------------------------------------

    /// Model a load. Returns the observed value, or `None` to make
    /// the caller fall through to the real primitive (free-run).
    pub(crate) fn load(
        &self,
        tid: usize,
        key: &LocKey<'_>,
        ord: AOrd,
        current: u64,
    ) -> Option<u64> {
        let mut g = self.op_entry(tid)?;
        if ord == AOrd::SeqCst {
            Self::sc_join(&mut g, tid);
        }
        let lid = self.loc_of(&mut g, key, current);
        let clock = g.threads[tid].clock;
        let floor_obs = g.threads[tid].obs.get(&lid).copied().unwrap_or(0);
        let stores = &g.locs[lid as usize].stores;
        let latest = stores.len() - 1;
        // Happens-before floor: the newest store whose stamp the
        // loading thread already covers; anything older is hidden.
        let mut floor_hb = 0;
        for (i, s) in stores.iter().enumerate() {
            if s.stamp.leq(&clock) {
                floor_hb = i;
            }
        }
        let floor = floor_obs.max(floor_hb);
        let stale_run = g.threads[tid].stale.get(&lid).copied().unwrap_or(0);
        let forced_latest = stale_run >= STALE_CAP;
        let lo = if forced_latest { latest } else { floor };
        // Candidates are lo..=latest, newest first (choice 0 = newest).
        let n = latest - lo + 1;
        let pick = if n > 1 { self.decide(&mut g, n, ChoiceKind::Value)? } else { 0 };
        let idx = latest - pick;
        let rec = &g.locs[lid as usize].stores[idx];
        let value = rec.value;
        let rel = if is_acq(ord) { rec.release } else { None };
        if let Some(rvc) = rel {
            g.threads[tid].clock.join(&rvc);
        }
        let th = &mut g.threads[tid];
        th.obs.insert(lid, idx);
        if idx == latest {
            th.stale.insert(lid, 0);
        } else {
            th.stale.insert(lid, stale_run + 1);
        }
        g.trace.push(Ev::Load { tid, loc: lid, value, stale: idx != latest });
        Some(value)
    }

    /// Model a store. Returns `true` if recorded (the caller must
    /// mirror the value into the real atomic — the baton is still
    /// held, so that write is exclusive), `false` to free-run.
    /// `current` is the real pre-store value, needed to seed a
    /// first-touch location history (the old value must stay
    /// observable by threads without a happens-before edge).
    pub(crate) fn store(
        &self,
        tid: usize,
        key: &LocKey<'_>,
        ord: AOrd,
        value: u64,
        current: u64,
    ) -> bool {
        let Some(mut g) = self.op_entry(tid) else { return false };
        if ord == AOrd::SeqCst {
            Self::sc_join(&mut g, tid);
        }
        let lid = self.loc_of(&mut g, key, current);
        let clock = g.threads[tid].clock;
        let release = if is_rel(ord) { Some(clock) } else { None };
        let loc = &mut g.locs[lid as usize];
        loc.stores.push(StoreRec { value, stamp: clock, release });
        let latest = loc.stores.len() - 1;
        let th = &mut g.threads[tid];
        th.obs.insert(lid, latest);
        th.stale.insert(lid, 0);
        g.trace.push(Ev::Store { tid, loc: lid, value });
        true
    }

    /// Model a read-modify-write (swap / fetch_add / fetch_sub …).
    /// RMWs always operate on the latest store. Returns the old
    /// value, or `None` to free-run. The caller mirrors `f(old)`.
    pub(crate) fn rmw(
        &self,
        tid: usize,
        key: &LocKey<'_>,
        ord: AOrd,
        current: u64,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> Option<u64> {
        let mut g = self.op_entry(tid)?;
        if ord == AOrd::SeqCst {
            Self::sc_join(&mut g, tid);
        }
        let lid = self.loc_of(&mut g, key, current);
        let latest = g.locs[lid as usize].stores.len() - 1;
        let (old, old_rel) = {
            let rec = &g.locs[lid as usize].stores[latest];
            (rec.value, rec.release)
        };
        if is_acq(ord) {
            if let Some(rvc) = old_rel {
                g.threads[tid].clock.join(&rvc);
            }
        }
        let new = f(old);
        let clock = g.threads[tid].clock;
        // RMWs continue the release sequence of the store they
        // replace: an acquire-load of the new value synchronizes with
        // the original releaser even if this RMW is relaxed.
        let release = match (is_rel(ord), old_rel) {
            (true, Some(mut r)) => {
                r.join(&clock);
                Some(r)
            }
            (true, None) => Some(clock),
            (false, keep) => keep,
        };
        let loc = &mut g.locs[lid as usize];
        loc.stores.push(StoreRec { value: new, stamp: clock, release });
        let idx = loc.stores.len() - 1;
        let th = &mut g.threads[tid];
        th.obs.insert(lid, idx);
        th.stale.insert(lid, 0);
        g.trace.push(Ev::Rmw { tid, loc: lid, old, new });
        Some(old)
    }

    /// Model a compare-exchange. `Some(Ok(old))` on success (caller
    /// mirrors `new`), `Some(Err(found))` on failure, `None` to
    /// free-run. Like hardware, CAS reads the *latest* store.
    pub(crate) fn cas(
        &self,
        tid: usize,
        key: &LocKey<'_>,
        success: AOrd,
        failure: AOrd,
        expect: u64,
        new: u64,
        current: u64,
    ) -> Option<Result<u64, u64>> {
        let mut g = self.op_entry(tid)?;
        if success == AOrd::SeqCst || failure == AOrd::SeqCst {
            Self::sc_join(&mut g, tid);
        }
        let lid = self.loc_of(&mut g, key, current);
        let latest = g.locs[lid as usize].stores.len() - 1;
        let (found, old_rel) = {
            let rec = &g.locs[lid as usize].stores[latest];
            (rec.value, rec.release)
        };
        if found != expect {
            if is_acq(failure) {
                if let Some(rvc) = old_rel {
                    g.threads[tid].clock.join(&rvc);
                }
            }
            let th = &mut g.threads[tid];
            th.obs.insert(lid, latest);
            th.stale.insert(lid, 0);
            g.trace.push(Ev::CasFail { tid, loc: lid, expect, found });
            return Some(Err(found));
        }
        if is_acq(success) {
            if let Some(rvc) = old_rel {
                g.threads[tid].clock.join(&rvc);
            }
        }
        let clock = g.threads[tid].clock;
        let release = match (is_rel(success), old_rel) {
            (true, Some(mut r)) => {
                r.join(&clock);
                Some(r)
            }
            (true, None) => Some(clock),
            (false, keep) => keep,
        };
        let loc = &mut g.locs[lid as usize];
        loc.stores.push(StoreRec { value: new, stamp: clock, release });
        let idx = loc.stores.len() - 1;
        let th = &mut g.threads[tid];
        th.obs.insert(lid, idx);
        th.stale.insert(lid, 0);
        g.trace.push(Ev::Rmw { tid, loc: lid, old: expect, new });
        Some(Ok(expect))
    }

    /// Model a fence. All fences join the global SC clock both ways
    /// (stronger than C11 for non-SC fences — sound, never racy).
    /// Returns `false` to free-run.
    pub(crate) fn fence(&self, tid: usize, _ord: AOrd) -> bool {
        let Some(mut g) = self.op_entry(tid) else { return false };
        Self::sc_join(&mut g, tid);
        g.trace.push(Ev::Fence { tid });
        true
    }

    /// Model `yield_now` / `spin_loop`: a free switch away from this
    /// thread. Returns `false` to free-run.
    pub(crate) fn yield_now(&self, tid: usize) -> bool {
        if self.is_aborted() {
            return false;
        }
        let g = self.m.lock().unwrap();
        if matches!(g.threads[tid].status, Status::Finished) {
            return false;
        }
        let Some(mut g) = self.schedule_point(g, tid, Mode::Yield) else { return false };
        g.trace.push(Ev::Yield { tid });
        true
    }

    // -- threads ------------------------------------------------------------

    /// Register the root thread (tid 0). Driver-side, before spawn.
    pub(crate) fn register_root(&self) {
        let mut g = self.m.lock().unwrap();
        debug_assert!(g.threads.is_empty());
        let mut clock = VClock::default();
        clock.bump(0);
        g.threads.push(ThreadState::new(clock));
        g.active = 0;
    }

    /// Register a child thread spawned by `parent`; returns its tid.
    pub(crate) fn spawn_thread(&self, parent: usize) -> usize {
        let mut g = self.m.lock().unwrap();
        let tid = g.threads.len();
        assert!(
            tid < MAX_THREADS,
            "model programs are capped at {} threads — shrink the test",
            MAX_THREADS
        );
        g.threads[parent].clock.bump(parent);
        let mut clock = g.threads[parent].clock;
        clock.bump(tid);
        g.threads.push(ThreadState::new(clock));
        g.trace.push(Ev::Spawn { tid: parent, child: tid });
        tid
    }

    /// Park until the scheduler first hands this thread the baton.
    pub(crate) fn wait_first_baton(&self, tid: usize) {
        let g = self.m.lock().unwrap();
        let _ = self.wait_for_baton(g, tid);
    }

    /// Block until `target` finishes, then join its clock. Returns
    /// `false` if the caller must free-run (abort happened).
    pub(crate) fn join_wait(&self, tid: usize, target: usize) -> bool {
        if self.is_aborted() {
            return false;
        }
        let g = self.m.lock().unwrap();
        if matches!(g.threads[tid].status, Status::Finished) {
            return false;
        }
        let mut g = if matches!(g.threads[target].status, Status::Finished) {
            g
        } else {
            let mut g = g;
            g.trace.push(Ev::JoinWait { tid, target });
            match self.schedule_point(g, tid, Mode::Block(target)) {
                Some(g) => g,
                None => return false,
            }
        };
        let tclock = g.threads[target].clock;
        g.threads[tid].clock.join(&tclock);
        true
    }

    /// Thread epilogue: mark finished, wake joiners, pass the baton.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut g = self.m.lock().unwrap();
        if matches!(g.threads[tid].status, Status::Finished) {
            return;
        }
        g.threads[tid].status = Status::Finished;
        g.threads[tid].clock.bump(tid);
        g.finished += 1;
        g.trace.push(Ev::Finish { tid });
        for t in 0..g.threads.len() {
            if g.threads[t].status == Status::Blocked(tid) {
                g.threads[t].status = Status::Runnable;
            }
        }
        if g.finished == g.threads.len() {
            self.cv.notify_all();
            return;
        }
        if self.is_aborted() {
            self.cv.notify_all();
            return;
        }
        if tid == 0 {
            self.fail(
                &mut g,
                "root closure returned with live spawned threads — every model \
                 thread must be joined before the closure ends"
                    .to_string(),
            );
            return;
        }
        let eligible: Vec<usize> = (0..g.threads.len())
            .filter(|&t| matches!(g.threads[t].status, Status::Runnable | Status::Yielded))
            .collect();
        if eligible.is_empty() {
            self.fail(
                &mut g,
                format!("deadlock: thread {} finished and no thread is runnable", tid),
            );
            return;
        }
        let idx = if eligible.len() > 1 {
            match self.decide(&mut g, eligible.len(), ChoiceKind::Sched) {
                Some(i) => i,
                None => return,
            }
        } else {
            0
        };
        let next = eligible[idx];
        g.threads[next].status = Status::Runnable;
        g.active = next;
        g.trace.push(Ev::Switch { to: next, preempt: false });
        self.cv.notify_all();
    }

    /// Driver-side: wait until every registered thread has finished
    /// (they free-run to completion after an abort). Panics if the
    /// execution wedges past the watchdog.
    pub(crate) fn wait_all_finished(&self) {
        let mut g = self.m.lock().unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        while g.finished < g.threads.len() {
            let (ng, timeout) = self
                .cv
                .wait_timeout(g, std::time::Duration::from_millis(200))
                .unwrap();
            g = ng;
            if timeout.timed_out() && std::time::Instant::now() > deadline {
                panic!(
                    "lwt-model: execution wedged ({} of {} threads finished) — \
                     a model thread is stuck outside the engine",
                    g.finished,
                    g.threads.len()
                );
            }
        }
    }

    // -- sysapi::Mutex ------------------------------------------------------

    /// Model a mutex lock. Loops (with scheduling) until the model
    /// lock word reads unlocked *and* the real `try_lock` succeeds;
    /// returns `false` if the caller must fall back to a blocking
    /// real lock (free-run). On success the calling thread enters a
    /// critical section in which shim ops are forbidden — this keeps
    /// the real lock's hold times schedule-point-free, so a blocked
    /// TLS destructor can never deadlock against a suspended holder.
    pub(crate) fn mutex_lock(
        &self,
        tid: usize,
        key: &LocKey<'_>,
        try_real: &mut dyn FnMut() -> bool,
    ) -> bool {
        loop {
            let Some(mut g) = self.op_entry(tid) else { return false };
            let lid = self.loc_of(&mut g, key, 0);
            let latest = g.locs[lid as usize].stores.len() - 1;
            let (locked, rel) = {
                let rec = &g.locs[lid as usize].stores[latest];
                (rec.value != 0, rec.release)
            };
            if !locked && try_real() {
                if let Some(rvc) = rel {
                    g.threads[tid].clock.join(&rvc);
                }
                let clock = g.threads[tid].clock;
                let loc = &mut g.locs[lid as usize];
                loc.stores.push(StoreRec { value: 1, stamp: clock, release: Some(clock) });
                g.in_critical[tid] += 1;
                g.trace.push(Ev::MutexLock { tid, loc: lid });
                return true;
            }
            // Model-locked, or a free-running TLS destructor holds
            // the real lock: behave like a contended lock and yield.
            drop(g);
            if !self.yield_now(tid) {
                return false;
            }
        }
    }

    /// Model a mutex unlock (no schedule point; the release edge is
    /// what matters). `false` means the lock was taken in free-run.
    pub(crate) fn mutex_unlock(&self, tid: usize, key: &LocKey<'_>) -> bool {
        if self.is_aborted() {
            return false;
        }
        let mut g = self.m.lock().unwrap();
        if matches!(g.threads[tid].status, Status::Finished) {
            return false;
        }
        if g.in_critical[tid] == 0 {
            return false;
        }
        g.threads[tid].clock.bump(tid);
        let lid = self.loc_of(&mut g, key, 1);
        let clock = g.threads[tid].clock;
        let loc = &mut g.locs[lid as usize];
        loc.stores.push(StoreRec { value: 0, stamp: clock, release: Some(clock) });
        g.in_critical[tid] -= 1;
        g.trace.push(Ev::MutexUnlock { tid, loc: lid });
        true
    }
}

// ---------------------------------------------------------------------------
// Thread wrapper

/// Body shared by the root and every spawned model thread.
pub(crate) fn run_thread<T: Send + 'static>(
    exec: Arc<Execution>,
    tid: usize,
    slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    done: Arc<AtomicBool>,
    f: impl FnOnce() -> T + Send + 'static,
) {
    let _cur = CurrentGuard::set(exec.clone(), tid);
    exec.wait_first_baton(tid);
    let r = catch_unwind(AssertUnwindSafe(f));
    if let Err(p) = &r {
        if !p.is::<Abort>() {
            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "model thread panicked (non-string payload)".to_string()
            };
            exec.fail_external(format!("thread {} panicked: {}", tid, msg));
        }
    }
    *slot.lock().unwrap() = Some(r);
    done.store(true, AOrd::SeqCst);
    exec.finish_thread(tid);
}

// ---------------------------------------------------------------------------
// Trace rendering

fn render_trace(trace: &[Ev], locs: &[Location]) -> String {
    let name = |l: &u32| -> String {
        let l = *l as usize;
        if l < locs.len() {
            format!("{}#{}", locs[l].name, l)
        } else {
            format!("loc#{}", l)
        }
    };
    let mut out = String::new();
    for ev in trace {
        let line = match ev {
            Ev::Load { tid, loc, value, stale } => format!(
                "[t{}] load   {} -> {}{}",
                tid,
                name(loc),
                fmt_val(*value),
                if *stale { "  (stale)" } else { "" }
            ),
            Ev::Store { tid, loc, value } => {
                format!("[t{}] store  {} <- {}", tid, name(loc), fmt_val(*value))
            }
            Ev::Rmw { tid, loc, old, new } => format!(
                "[t{}] rmw    {} {} -> {}",
                tid,
                name(loc),
                fmt_val(*old),
                fmt_val(*new)
            ),
            Ev::CasFail { tid, loc, expect, found } => format!(
                "[t{}] cas!   {} expected {} found {}",
                tid,
                name(loc),
                fmt_val(*expect),
                fmt_val(*found)
            ),
            Ev::Fence { tid } => format!("[t{}] fence", tid),
            Ev::Yield { tid } => format!("[t{}] yield", tid),
            Ev::Switch { to, preempt } => format!(
                "       ---- switch to t{}{} ----",
                to,
                if *preempt { " (preemption)" } else { "" }
            ),
            Ev::Spawn { tid, child } => format!("[t{}] spawn  t{}", tid, child),
            Ev::JoinWait { tid, target } => format!("[t{}] join   t{} (blocks)", tid, target),
            Ev::Finish { tid } => format!("[t{}] finished", tid),
            Ev::MutexLock { tid, loc } => format!("[t{}] lock   {}", tid, name(loc)),
            Ev::MutexUnlock { tid, loc } => format!("[t{}] unlock {}", tid, name(loc)),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}
