//! Model-checked Vyukov MPSC injector: the *real*
//! `lwt_sched::Injector` (routed through its `sysapi` facade onto the
//! `lwt-model` shims) explored under the deterministic scheduler.
//! Covers the wait-free push vs the consumer's inconsistent-window
//! handling, node recycling through the spare pool (address reuse is
//! disambiguated by the shims' per-location tokens), and the
//! lock-free single-consumer claim.
//!
//! Build and run with:
//! `RUSTFLAGS="--cfg lwt_model" cargo test -p lwt-model --test injector`
#![cfg(lwt_model)]

use std::sync::Arc;

use lwt_model::thread;
use lwt_model::Checker;
use lwt_sched::Injector;

fn quick() -> Checker {
    Checker::new().max_executions(400_000).time_budget_ms(45_000)
}

/// Consumer racing a producer: pops that land in the mid-push
/// inconsistent window must read as empty (not crash, not tear), and
/// after the producer finishes every unit comes out exactly once, in
/// per-producer FIFO order.
#[test]
fn pop_racing_push_delivers_everything_in_order() {
    quick().check(|| {
        let q = Arc::new(Injector::new());
        let p = Arc::clone(&q);
        let producer = thread::spawn(move || {
            p.push(1u64);
            p.push(2);
        });
        let mut got = Vec::new();
        // Bounded concurrent attempts — some land mid-push and must
        // simply miss.
        for _ in 0..3 {
            match q.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2], "lost, duplicated, or reordered a unit");
    });
}

/// Node recycling: a pop retires the old stub into the spare pool and
/// a later push reuses that exact allocation. The reused node must
/// behave as a fresh location (no ABA through the recycled address),
/// and concurrent pushes contending on the pool's `try_lock` must
/// still all deliver.
#[test]
fn recycled_nodes_never_lose_or_double_deliver() {
    quick().check(|| {
        let q = Arc::new(Injector::new());
        // Single-threaded prologue parks one retired node in the
        // spare pool.
        q.push(1u64);
        assert_eq!(q.pop(), Some(1));
        // Now two pushes race for that one spare (the loser allocates).
        let p = Arc::clone(&q);
        let producer = thread::spawn(move || p.push(2u64));
        q.push(3);
        let mut got = Vec::new();
        for _ in 0..2 {
            match q.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![2, 3], "recycled node lost or double-delivered a unit");
    });
}

/// Two threads calling `pop` concurrently: the claim flag must reject
/// (not block, not corrupt) one of them — at most one delivery, and
/// the unit is never lost.
#[test]
fn concurrent_pop_claim_rejects_without_losing_units() {
    quick().check(|| {
        let q = Arc::new(Injector::new());
        q.push(9u64);
        let p = Arc::clone(&q);
        let rival = thread::spawn(move || p.pop());
        let mine = q.pop();
        let theirs = rival.join();
        let delivered = mine.iter().chain(theirs.iter()).count();
        assert!(delivered <= 1, "claim flag admitted two concurrent consumers");
        let mut rest = Vec::new();
        while let Some(v) = q.pop() {
            rest.push(v);
        }
        assert_eq!(delivered + rest.len(), 1, "unit lost under pop contention");
    });
}
