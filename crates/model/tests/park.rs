//! Model-checked parking: the *real* `ParkGroup` wake-one protocol and
//! the `Parker` token machine (routed through the crates' `sysapi`
//! facades onto the `lwt-model` shims) explored under the deterministic
//! scheduler.
//!
//! Under `--cfg lwt_model`, `ParkGroup::park` sleeps with **no backstop
//! timeout** (see `crates/sched/src/park.rs`): a lost wake is a
//! livelock the checker detects, not a 200 ms hiccup a timeout would
//! silently absorb. These tests are therefore the proof the backstops
//! are defense in depth only.
//!
//! Build and run with:
//! `RUSTFLAGS="--cfg lwt_model" cargo test -p lwt-model --test park`
#![cfg(lwt_model)]

use std::sync::Arc;

use lwt_model::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use lwt_model::thread;
use lwt_model::Checker;
use lwt_sched::{force_wait_policy, ParkGroup, ParkResult, WaitPolicy};
use lwt_sync::Parker;

fn quick() -> Checker {
    Checker::new().max_executions(400_000).time_budget_ms(45_000)
}

/// The Parker token is never lost: an unpark delivered at *any* point
/// relative to the park — before the sleeper arrives, mid-descent, or
/// while it sleeps — must let the park return. A broken token machine
/// shows up as a livelock (the model-build park has no timeout).
#[test]
fn parker_unpark_before_or_during_park_is_not_lost() {
    quick().check(|| {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let sleeper = thread::spawn(move || p2.park());
        p.unpark();
        sleeper.join();
    });
}

/// The store-buffering race at the heart of the protocol: a producer
/// publishes work then notifies, while the idler announces then
/// re-checks. In every interleaving either the idler's re-check sees
/// the work (park aborts) or the notifier sees the announcement (token
/// delivered). If both sides could miss each other — the classic lost
/// wake — the blocking model-build sleep would livelock.
#[test]
fn wake_one_never_loses_the_only_wake() {
    force_wait_policy(WaitPolicy::Passive);
    quick().check(|| {
        let group = Arc::new(ParkGroup::new(1));
        let work = Arc::new(AtomicUsize::new(0));
        let (g2, w2) = (Arc::clone(&group), Arc::clone(&work));
        let producer = thread::spawn(move || {
            // Push first, then wake — the ordering contract every
            // backend's spawn/requeue site follows.
            w2.store(1, Ordering::SeqCst);
            g2.notify();
        });
        while work.load(Ordering::SeqCst) == 0 {
            // A dry sweep parks; any return re-sweeps. TimedOut cannot
            // happen here (no backstop in the model build).
            let res = group.park(0, None, || work.load(Ordering::SeqCst));
            assert_ne!(res, ParkResult::TimedOut, "model park has no timeout");
        }
        producer.join();
        assert_eq!(group.idle_workers(), 0, "exited worker still announced");
    });
}

/// Wake-one with *two* sleepers: a single push plus a single notify
/// must get the unit consumed — the handoff flag may suppress herd
/// wakes, but never the one wake that matters — and `unpark_all` must
/// then release everyone for shutdown, exactly the backend finalize
/// sequence (stop flag, then tokens for all).
#[test]
fn one_push_one_notify_feeds_a_fully_parked_pair() {
    force_wait_policy(WaitPolicy::Passive);
    quick().check(|| {
        let group = Arc::new(ParkGroup::new(2));
        let work = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let (g, wk, st) = (Arc::clone(&group), Arc::clone(&work), Arc::clone(&stop));
                thread::spawn(move || loop {
                    if st.load(Ordering::SeqCst) {
                        break;
                    }
                    if wk.compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
                        continue; // consumed the unit; re-sweep
                    }
                    // Both queues and the stop flag count as "pending":
                    // a park racing the shutdown stores must abort.
                    let _ = g.park(w, None, || {
                        wk.load(Ordering::SeqCst) + usize::from(st.load(Ordering::SeqCst))
                    });
                })
            })
            .collect();
        work.store(1, Ordering::SeqCst);
        group.notify();
        while work.load(Ordering::SeqCst) != 0 {
            thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        group.unpark_all();
        for t in workers {
            t.join();
        }
    });
}
