//! Model-checked Chase–Lev deque: the *real* `lwt_sched::ChaseLev`
//! (routed through its `sysapi` facade onto the `lwt-model` shims)
//! explored under the deterministic scheduler.
//!
//! Build and run with:
//! `RUSTFLAGS="--cfg lwt_model" cargo test -p lwt-model --test chase_lev`
#![cfg(lwt_model)]

use lwt_model::thread;
use lwt_model::{replay, Checker, Outcome};
use lwt_sched::{ChaseLev, Steal, Stealer, Worker};
use lwt_sync::rng::{Rng, Xoshiro256StarStar};

/// Bounded search: exhaustive for these programs at the default
/// preemption bound (2); the caps are backstops for CI time.
fn quick() -> Checker {
    Checker::new().max_executions(400_000).time_budget_ms(45_000)
}

/// The classic size-1 race: owner `pop` and one thief fight over the
/// last element through the `top` CAS. Exactly one side may win —
/// never both (duplication), never neither (loss).
#[test]
fn size_one_pop_vs_steal_has_exactly_one_winner() {
    quick().check(|| {
        let (w, s) = ChaseLev::with_capacity(2);
        w.push(7u64);
        let thief = thread::spawn(move || match s.steal_once() {
            Steal::Success(v) => Some(v),
            Steal::Retry | Steal::Empty => None,
        });
        let popped = w.pop();
        let stolen = thief.join();
        let delivered = popped.iter().chain(stolen.iter()).count();
        assert_eq!(
            delivered, 1,
            "size-1 race must deliver exactly once (pop={popped:?}, steal={stolen:?})"
        );
    });
}

/// Drain every unit left in the deque (single-threaded epilogue).
fn drain(w: &Worker<u64>, into: &mut Vec<u64>) {
    while let Some(v) = w.pop() {
        into.push(v);
    }
}

/// Thief helper: steal until the deque reports empty.
fn steal_all(s: Stealer<u64>) -> Vec<u64> {
    let mut got = Vec::new();
    loop {
        match s.steal_once() {
            Steal::Success(v) => got.push(v),
            Steal::Retry => thread::yield_now(),
            Steal::Empty => return got,
        }
    }
}

/// Two pushes, a concurrent stealing loop, one owner pop: whatever
/// the interleaving, the multiset of delivered + leftover units is
/// exactly what was pushed (linearizable transfer, no loss, no dup).
#[test]
fn push_steal_pop_preserves_the_multiset() {
    quick().check(|| {
        let (w, s) = ChaseLev::with_capacity(2);
        w.push(10);
        w.push(20);
        let thief = thread::spawn(move || steal_all(s));
        let mut got = Vec::new();
        got.extend(w.pop());
        got.extend(thief.join());
        drain(&w, &mut got);
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "lost or duplicated a unit");
    });
}

/// The seeded-bug scenario (shared by the two tests below), with the
/// owner using `pop_seeded_missing_fence` — `pop` minus the `SeqCst`
/// fence between the `bottom` store and the `top` load.
fn seeded_bug_scenario() {
    let (w, s) = ChaseLev::with_capacity(4);
    w.push(1);
    w.push(2);
    let thief = thread::spawn(move || steal_all(s));
    let mut got = Vec::new();
    got.extend(w.pop_seeded_missing_fence());
    got.extend(thief.join());
    drain(&w, &mut got);
    got.sort_unstable();
    assert_eq!(got, vec![1, 2], "fence-less pop lost or duplicated a unit");
}

/// Acceptance demonstration: the checker finds the missing-fence
/// duplication (owner's stale `top` read hands out an index a thief
/// already claimed), and the printed schedule replays to the same
/// failure deterministically.
#[test]
fn seeded_missing_fence_bug_is_caught_with_replayable_trace() {
    let outcome = quick().run(seeded_bug_scenario);
    let Outcome::Fail { message, schedule, trace, .. } = outcome else {
        panic!("checker missed the seeded missing-fence bug: {outcome:?}");
    };
    assert!(!trace.is_empty(), "failure must carry an event trace");
    assert!(!schedule.is_empty(), "failure must carry a replay schedule");
    let Outcome::Fail { message: replayed, .. } = replay(&schedule, seeded_bug_scenario) else {
        panic!("schedule {schedule:?} did not reproduce the failure");
    };
    assert_eq!(message, replayed, "replay must reproduce the same failure");
}

/// Control for the seeded test: the same scenario with the real
/// (fenced) `pop` passes exhaustively — the fence is the fix.
#[test]
fn fenced_pop_passes_the_seeded_scenario() {
    quick().check(|| {
        let (w, s) = ChaseLev::with_capacity(4);
        w.push(1);
        w.push(2);
        let thief = thread::spawn(move || steal_all(s));
        let mut got = Vec::new();
        got.extend(w.pop());
        got.extend(thief.join());
        drain(&w, &mut got);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "lost or duplicated a unit");
    });
}

/// The differential suite's seeded op streams
/// (`crates/sched/tests/chase_lev_differential.rs`, seeds 42 and 7,
/// op map 0|1 = push, 2 = pop, 3 = steal) re-pointed at the model
/// checker: the owner replays the push/pop ops while a concurrent
/// thief performs one steal attempt per steal op, and every
/// interleaving must preserve the pushed multiset.
#[test]
fn differential_seed_streams_hold_under_the_model() {
    for seed in [42u64, 7] {
        quick().check(move || {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let ops: Vec<u8> = (0..6).map(|_| rng.gen_range(0u8..4)).collect();
            let steal_ops = ops.iter().filter(|&&op| op == 3).count();
            let (w, s) = ChaseLev::with_capacity(2);
            let thief = thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..steal_ops {
                    if let Steal::Success(v) = s.steal_once() {
                        got.push(v);
                    }
                }
                got
            });
            let mut next = 0u64;
            let mut got = Vec::new();
            for op in ops {
                match op {
                    0 | 1 => {
                        w.push(next);
                        next += 1;
                    }
                    2 => got.extend(w.pop()),
                    _ => {} // steal ops run on the thief
                }
            }
            got.extend(thief.join());
            drain(&w, &mut got);
            got.sort_unstable();
            assert_eq!(got, (0..next).collect::<Vec<_>>(), "seed {seed}: multiset diverged");
        });
    }
}
