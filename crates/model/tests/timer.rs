//! Model-checked timer wheel: the *real* `lwt_sched::TimerWheel` /
//! `TimerEntry` code (its entry state machine routed through the
//! crates' `sysapi` facades, its slot lock through the facade-switched
//! `lwt_sync::SpinLock`) explored under the deterministic scheduler.
//!
//! What the serving stack needs from the wheel, and what these tests
//! pin against every interleaving:
//!
//! 1. **No lost expiry, no double win.** `advance` (the reactor
//!    driver) racing `cancel` (the I/O op completing in time) must
//!    resolve to exactly one winner: a cancelled entry never fires,
//!    and an entry that fired reports the loss to the canceller — the
//!    edge a read that *just* beat its deadline relies on to tell
//!    "done" from "timed out".
//! 2. **Expiry is always observable.** A waiter polling `has_fired`
//!    (the ULT relax-loop shape) must see the flag after the deadline
//!    tick is advanced past — if the fire could be lost, the polling
//!    loop below would livelock, which the checker detects (model
//!    builds have no timeout backstops).
//! 3. **Re-arm after fire.** One logical deadline slot re-armed as a
//!    fresh entry after its predecessor fired (the keep-alive HTTP
//!    connection re-arming its idle timer per request) keeps both
//!    properties.
//!
//! Build and run with:
//! `RUSTFLAGS="--cfg lwt_model" cargo test -p lwt-model --test timer`
#![cfg(lwt_model)]

use std::sync::Arc;

use lwt_model::sync::atomic::{AtomicUsize, Ordering};
use lwt_model::thread;
use lwt_model::Checker;
use lwt_sched::TimerWheel;

fn quick() -> Checker {
    Checker::new().max_executions(400_000).time_budget_ms(45_000)
}

/// `advance` racing `cancel` on one armed entry: exactly one side
/// wins, and both sides' return values agree on who. A double win
/// (fired *and* cancel-returned-true) would let a timed-out I/O op
/// also report success; a double loss would wedge the waiter.
#[test]
fn concurrent_cancel_and_advance_have_exactly_one_winner() {
    quick().check(|| {
        let wheel = Arc::new(TimerWheel::new());
        let entry = wheel.arm(1);
        let (w2, e2) = (Arc::clone(&wheel), Arc::clone(&entry));
        let driver = thread::spawn(move || w2.advance(1));
        let cancelled = entry.cancel();
        let fired = driver.join();
        assert_eq!(
            cancelled,
            fired == 0,
            "cancel won ⇔ nothing fired (cancelled={cancelled}, fired={fired})"
        );
        assert_eq!(e2.has_fired(), !cancelled);
        // The loser's view is stable: repeat queries agree forever.
        assert_eq!(e2.cancel(), cancelled);
    });
}

/// A waiter polling `has_fired` — the ULT relax-loop shape — must
/// observe the expiry once the driver advances past the deadline. A
/// lost fire livelocks the polling loop, which the checker flags.
#[test]
fn no_lost_expiry_for_a_polling_waiter() {
    quick().check(|| {
        let wheel = Arc::new(TimerWheel::new());
        let entry = wheel.arm(2);
        let w2 = Arc::clone(&wheel);
        let driver = thread::spawn(move || {
            // Two strides so the deadline tick lands mid-advance in
            // some interleavings, at the boundary in others.
            w2.advance(1);
            w2.advance(3);
        });
        while !entry.has_fired() {
            thread::yield_now();
        }
        driver.join();
        assert_eq!(wheel.armed_len(), 0);
    });
}

/// Re-arm-after-fire, single logical slot: a fresh entry armed after
/// its predecessor fired must itself fire exactly once, with the
/// predecessor's terminal state undisturbed — the keep-alive
/// connection's per-request idle-timer cycle.
#[test]
fn rearm_after_fire_fires_the_new_entry_exactly_once() {
    quick().check(|| {
        let wheel = Arc::new(TimerWheel::new());
        let fired = Arc::new(AtomicUsize::new(0));
        let first = wheel.arm(1);
        assert_eq!(wheel.advance(1), 1);
        assert!(first.has_fired());
        let second = wheel.arm(2);
        let (w2, f2) = (Arc::clone(&wheel), Arc::clone(&fired));
        let driver = thread::spawn(move || {
            f2.fetch_add(w2.advance(5), Ordering::SeqCst);
        });
        fired.fetch_add(wheel.advance(5), Ordering::SeqCst);
        driver.join();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "one re-arm ⇒ one fire");
        assert!(second.has_fired());
        assert!(first.has_fired(), "predecessor's terminal state disturbed");
    });
}
