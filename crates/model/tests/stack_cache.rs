//! Model-checked fiber stack cache: the *real* `lwt_fiber::cache`
//! overflow pool (its global `Mutex` routed through the crate's
//! `sysapi` facade onto the `lwt-model` shim Mutex) explored under
//! the deterministic scheduler. The interesting path is the
//! TLS-destructor donation: a worker's local free-list drains into
//! the global pool at thread exit, which the model orders *before*
//! `join` returns (the shim join performs a full OS join).
//!
//! Build and run with:
//! `RUSTFLAGS="--cfg lwt_model" cargo test -p lwt-model --test stack_cache`
#![cfg(lwt_model)]

use lwt_fiber::cache;
use lwt_fiber::stack::StackSize;
use lwt_model::thread;
use lwt_model::Checker;

fn quick() -> Checker {
    Checker::new().max_executions(400_000).time_budget_ms(45_000)
}

/// A stack released on a worker thread must be reachable from another
/// thread after the worker exits: local free-list → global overflow
/// pool (TLS destructor) → foreign `acquire`.
#[test]
fn worker_exit_donates_stacks_to_the_global_pool() {
    quick().check(|| {
        // The cache is process-global; pin its state at the start of
        // every execution so the search is deterministic.
        cache::set_capacity(1);
        cache::purge();
        let size = StackSize::MIN;
        let worker = thread::spawn(move || {
            let stack = cache::acquire(size);
            let base = stack.base() as usize;
            // Parks in the worker's local free-list (capacity 1).
            drop(stack);
            base
        });
        // join waits out the worker's TLS destructors, so the donation
        // has happened by the time it returns.
        let base = worker.join();
        let again = cache::acquire(size);
        assert_eq!(
            again.base() as usize, base,
            "worker's stack never reached the global pool"
        );
        assert!(again.canary_intact());
        drop(again);
        cache::purge();
    });
}

/// Two threads draining the global pool concurrently: one recycled
/// stack, two acquires — exactly one hit; the other must fall back to
/// a fresh allocation, never a shared or torn stack. The racer
/// returns its live handle (instead of a base address) so both
/// handles provably coexist at the comparison — if the racer dropped
/// its stack first, the root could *legitimately* re-acquire the same
/// recycled stack and equal bases would prove nothing.
#[test]
fn concurrent_acquire_never_hands_out_the_same_stack_twice() {
    quick().check(|| {
        cache::set_capacity(1);
        cache::purge();
        let size = StackSize::MIN;
        // Seed the global pool with exactly one stack via a worker's
        // exit donation.
        let seed = thread::spawn(move || {
            drop(cache::acquire(size));
        });
        seed.join();
        let racer = thread::spawn(move || cache::acquire(size));
        let mine = cache::acquire(size);
        let theirs = racer.join();
        assert_ne!(
            mine.base() as usize,
            theirs.base() as usize,
            "two live handles share one stack"
        );
        assert!(mine.canary_intact() && theirs.canary_intact());
        drop(mine);
        drop(theirs);
        cache::purge();
    });
}
