//! Model-checked lwt-sync primitives: the *real* `SpinLock` and
//! `FebCell` (routed through the crate's `sysapi` facade onto the
//! `lwt-model` shims) explored under the deterministic scheduler.
//!
//! Build and run with:
//! `RUSTFLAGS="--cfg lwt_model" cargo test -p lwt-model --test sync_primitives`
#![cfg(lwt_model)]

use std::sync::Arc;

use lwt_model::sync::atomic::{AtomicUsize, Ordering};
use lwt_model::thread;
use lwt_model::Checker;
use lwt_sync::{FebCell, SpinLock};

fn quick() -> Checker {
    Checker::new().max_executions(400_000).time_budget_ms(45_000)
}

/// Mutual exclusion: a shim-atomic holder count makes any overlap of
/// the two critical sections observable to the checker (the increment
/// is a schedule point, so a broken lock would interleave here).
#[test]
fn spinlock_critical_sections_never_overlap() {
    quick().check(|| {
        let lock = Arc::new(SpinLock::new(0u64));
        let holders = Arc::new(AtomicUsize::new(0));
        let (l2, h2) = (Arc::clone(&lock), Arc::clone(&holders));
        let other = thread::spawn(move || {
            let mut g = l2.lock();
            assert_eq!(h2.fetch_add(1, Ordering::SeqCst), 0, "two SpinLock holders");
            *g += 1;
            h2.fetch_sub(1, Ordering::SeqCst);
        });
        {
            let mut g = lock.lock();
            assert_eq!(holders.fetch_add(1, Ordering::SeqCst), 0, "two SpinLock holders");
            *g += 1;
            holders.fetch_sub(1, Ordering::SeqCst);
        }
        other.join();
        assert_eq!(*lock.lock(), 2, "lost update under SpinLock");
    });
}

/// `try_lock` while the lock is held must fail — in every
/// interleaving, because the guard is held across the whole child.
#[test]
fn spinlock_try_lock_respects_a_held_lock() {
    quick().check(|| {
        let lock = Arc::new(SpinLock::new(()));
        let guard = lock.lock();
        let l2 = Arc::clone(&lock);
        let contender = thread::spawn(move || l2.try_lock().is_some());
        let acquired = contender.join();
        assert!(!acquired, "try_lock succeeded while the lock was held");
        drop(guard);
        assert!(lock.try_lock().is_some(), "lock must be free after unlock");
    });
}

/// FEB wake ordering: `read_ff` must block until the matching
/// `write_ef`, observe exactly the written value (the Release store
/// of FULL publishes it), and leave the cell full.
#[test]
fn feb_read_ff_waits_for_write_ef_and_leaves_full() {
    quick().check(|| {
        let cell = Arc::new(FebCell::new());
        let c2 = Arc::clone(&cell);
        let reader = thread::spawn(move || c2.read_ff(thread::yield_now));
        cell.write_ef(42u64, thread::yield_now);
        assert_eq!(reader.join(), 42, "read_ff returned without the written value");
        assert!(cell.is_full(), "read_ff must leave the cell full");
    });
}

/// `read_fe` hands the value to exactly one taker and empties the
/// cell; a concurrent `write_ef` can then refill it (the FEB mutex
/// handoff pattern from the Qthreads paper).
#[test]
fn feb_read_fe_is_an_exclusive_take() {
    quick().check(|| {
        let cell = Arc::new(FebCell::full(5u64));
        let c2 = Arc::clone(&cell);
        let taker = thread::spawn(move || c2.try_read_fe());
        let mine = cell.try_read_fe();
        let theirs = taker.join();
        let taken = mine.iter().chain(theirs.iter()).count();
        assert_eq!(taken, 1, "read_fe must hand the value to exactly one taker");
        assert!(!cell.is_full(), "a successful read_fe leaves the cell empty");
    });
}

/// Full handoff chain: writer fills, middle thread takes and refills,
/// root joins on the final value — the ULT join idiom end to end.
#[test]
fn feb_write_take_rewrite_chain() {
    quick().check(|| {
        let cell = Arc::new(FebCell::new());
        let c2 = Arc::clone(&cell);
        let relay = thread::spawn(move || {
            let v = c2.read_fe(thread::yield_now);
            c2.write_ef(v + 1, thread::yield_now);
        });
        cell.write_ef(1u64, thread::yield_now);
        relay.join();
        assert_eq!(cell.read_ff(thread::yield_now), 2, "relay handoff broke");
    });
}
