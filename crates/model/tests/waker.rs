//! Model-checked future-task wakes: the *real* [`TaskState`] machine
//! from `lwt-sched` (routed through its `sysapi` facade onto the
//! `lwt-model` shims) explored under the deterministic scheduler.
//!
//! The async bridge's correctness rests on two properties of this
//! five-state cell (see `crates/sched/src/task.rs`):
//!
//! 1. **one queue entry at a time** — concurrent wakers and the runner
//!    never create two simultaneous enqueue obligations, so
//!    `Future::poll`'s `&mut` exclusivity holds, and
//! 2. **no lost wake** — a wake that lands at or after the runner's
//!    `begin_poll` claim always leaves exactly one party (waker or
//!    runner) holding the obligation to re-enqueue.
//!
//! Build and run with:
//! `RUSTFLAGS="--cfg lwt_model" cargo test -p lwt-model --test waker`
#![cfg(lwt_model)]

use std::sync::Arc;

use lwt_model::thread;
use lwt_model::Checker;
use lwt_sched::{TaskState, WakeAction};

fn quick() -> Checker {
    Checker::new().max_executions(400_000).time_budget_ms(45_000)
}

/// The central race of the bridge: one waker fires at an arbitrary
/// point relative to a poll cycle that returns `Pending`. In every
/// interleaving the wake is accounted for — pre-claim it is covered by
/// the queue entry the runner is about to consume; at or after the
/// claim exactly one side (waker via `Schedule`, runner via the
/// `finish_pending` coalesce path) must requeue, never both, never
/// neither.
#[test]
fn wake_racing_a_pending_poll_is_never_lost() {
    quick().check(|| {
        let st = Arc::new(TaskState::new()); // born SCHEDULED: one entry queued
        let s2 = Arc::clone(&st);
        let waker = thread::spawn(move || s2.on_wake());

        // Runner: pop the birth entry, claim it, poll returns Pending.
        // on_wake never leaves SCHEDULED, so the claim cannot fail here.
        assert!(st.begin_poll(), "birth entry claim must succeed");
        let runner_requeues = st.finish_pending();

        let action = waker.join();
        match action {
            // Wake landed while the task was mid-poll: the runner owns
            // the requeue, and the waker must not also push.
            WakeAction::Coalesced => {
                assert!(runner_requeues, "coalesced wake dropped by runner");
                assert!(st.begin_poll(), "requeued entry must be claimable");
            }
            // Wake landed after the clean park: the waker owns the
            // requeue, and the runner must have parked without pushing.
            WakeAction::Schedule => {
                assert!(!runner_requeues, "double enqueue: runner and waker");
                assert!(st.begin_poll(), "scheduled entry must be claimable");
            }
            // Wake landed before the claim: the still-queued birth
            // entry covers it; nobody pushes a second one, and a later
            // wake (after this clean park) schedules afresh.
            WakeAction::AlreadyQueued => {
                assert!(!runner_requeues, "pre-claim wake must coalesce free");
                assert_eq!(st.on_wake(), WakeAction::Schedule);
            }
            other => panic!("impossible wake action {other:?}"),
        }
    });
}

/// Property 1 under waker contention: two free-floating wakers firing
/// around a single `Pending` poll produce **at most one** enqueue
/// obligation in total — the `IDLE -> SCHEDULED` CAS hands the push to
/// exactly one winner and everything else coalesces.
#[test]
fn concurrent_wakers_never_double_enqueue() {
    quick().check(|| {
        let st = Arc::new(TaskState::new());
        let (s2, s3) = (Arc::clone(&st), Arc::clone(&st));
        let w1 = thread::spawn(move || s2.on_wake());
        let w2 = thread::spawn(move || s3.on_wake());

        assert!(st.begin_poll());
        let runner_requeues = st.finish_pending();

        let schedules = [w1.join(), w2.join()]
            .iter()
            .filter(|a| **a == WakeAction::Schedule)
            .count();
        let obligations = schedules + usize::from(runner_requeues);
        assert!(
            obligations <= 1,
            "two enqueue obligations alive at once: {schedules} schedules, \
             runner_requeues={runner_requeues}"
        );
    });
}

/// Terminal discard: a wake racing `complete` must never revive the
/// task. Whatever the waker observes — the queued birth entry, the
/// mid-poll window, or the terminal state — no interleaving leaves the
/// cell claimable again, and a wake strictly after completion reports
/// `Complete`.
#[test]
fn wake_racing_completion_never_revives_the_task() {
    quick().check(|| {
        let st = Arc::new(TaskState::new());
        let s2 = Arc::clone(&st);
        let waker = thread::spawn(move || s2.on_wake());

        assert!(st.begin_poll());
        st.complete();

        let action = waker.join();
        assert_ne!(action, WakeAction::Schedule, "wake revived a dead task");
        assert!(!st.begin_poll(), "completed cell must reject claims");
        assert_eq!(st.on_wake(), WakeAction::Complete);
    });
}
