//! Self-tests of the model-checking engine, using only the shim
//! types — no `--cfg lwt_model` required. These validate that the
//! checker finds bugs it must find, passes programs it must pass,
//! and that failing schedules replay deterministically.

use std::sync::Arc;

use lwt_model::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use lwt_model::sync::Mutex;
use lwt_model::{thread, Checker, Outcome};

fn quick() -> Checker {
    Checker::new().max_executions(200_000).time_budget_ms(30_000)
}

/// Release/acquire message passing is correct: the flag's release
/// store makes the data store visible. Must pass exhaustively.
#[test]
fn message_passing_release_acquire_passes() {
    let outcome = quick().check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    assert!(matches!(outcome, Outcome::Pass { complete: true, .. }), "{:?}", outcome);
}

/// The same program with a relaxed flag is broken: the reader can
/// see the flag without the data. The checker must find it and the
/// recorded schedule must replay to the same failure.
#[test]
fn message_passing_relaxed_is_caught_and_replays() {
    let program = || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed); // BUG: no release edge
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    };
    let outcome = quick().run(program);
    let Outcome::Fail { schedule, message, trace, .. } = outcome else {
        panic!("checker missed the relaxed message-passing bug: {:?}", outcome);
    };
    assert!(message.contains("assertion"), "unexpected message: {}", message);
    assert!(trace.contains("stale"), "trace should show the stale read:\n{}", trace);
    // Replay the printed schedule: same bug, deterministically.
    let replayed = lwt_model::replay(&schedule, program);
    let Outcome::Fail { message: m2, .. } = replayed else {
        panic!("replay of {:?} did not reproduce the failure", schedule);
    };
    assert_eq!(message, m2);
}

/// Store buffering (Dekker): without SeqCst both threads can read 0.
/// With SeqCst fences the outcome `r1 == r2 == 0` is forbidden —
/// the checker must agree (this pins the global SC-clock logic).
#[test]
fn dekker_with_fences_passes() {
    let outcome = quick().check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::new(AtomicUsize::new(7));
        let (x2, y2, r) = (x.clone(), y.clone(), r1.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            r.store(y2.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        y.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let r2 = x.load(Ordering::Relaxed);
        t.join();
        let r1v = r1.load(Ordering::Relaxed);
        assert!(!(r1v == 0 && r2 == 0), "both critical sections entered");
    });
    assert!(matches!(outcome, Outcome::Pass { complete: true, .. }), "{:?}", outcome);
}

/// Dekker *without* fences is broken and the checker must produce
/// the r1 == r2 == 0 weak behavior via stale reads.
#[test]
fn dekker_without_fences_is_caught() {
    let outcome = quick().run(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::new(AtomicUsize::new(7));
        let (x2, y2, r) = (x.clone(), y.clone(), r1.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            r.store(y2.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        y.store(1, Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        t.join();
        let r1v = r1.load(Ordering::Relaxed);
        assert!(!(r1v == 0 && r2 == 0), "both critical sections entered");
    });
    assert!(matches!(outcome, Outcome::Fail { .. }), "missed store-buffering: {:?}", outcome);
}

/// A lost-update race (load; add; store instead of fetch_add) must
/// be caught.
#[test]
fn lost_update_is_caught() {
    let outcome = quick().run(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    assert!(matches!(outcome, Outcome::Fail { .. }), "missed lost update: {:?}", outcome);
}

/// fetch_add is atomic: the same program with RMWs passes.
#[test]
fn rmw_increments_pass() {
    let outcome = quick().check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(c.load(Ordering::Acquire), 2);
    });
    assert!(matches!(outcome, Outcome::Pass { complete: true, .. }), "{:?}", outcome);
}

/// The shim Mutex provides mutual exclusion and its release edge
/// publishes the protected data.
#[test]
fn mutex_counter_passes() {
    let outcome = quick().check(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = m.clone();
        let t = thread::spawn(move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        t.join();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(matches!(outcome, Outcome::Pass { complete: true, .. }), "{:?}", outcome);
}

/// A spin loop whose condition can never be satisfied is reported
/// as a livelock via the step budget, not an infinite hang.
#[test]
fn hopeless_spin_reports_livelock() {
    let outcome = Checker::new().steps(500).max_executions(50).run(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let t = thread::spawn(move || {
            while !f2.load(Ordering::Acquire) {
                thread::yield_now();
            }
        });
        // Nobody ever sets the flag.
        t.join();
    });
    let Outcome::Fail { message, .. } = outcome else {
        panic!("hopeless spin not reported: {:?}", outcome);
    };
    assert!(
        message.contains("step budget") || message.contains("deadlock"),
        "unexpected message: {}",
        message
    );
}

/// Leaking a spawned thread past the closure is an error: the
/// drained-execution guarantee depends on join-before-return.
#[test]
fn leaked_thread_is_reported() {
    let outcome = Checker::new().max_executions(50).run(|| {
        let h = thread::spawn(|| {});
        std::mem::forget(h);
    });
    let Outcome::Fail { message, .. } = outcome else {
        panic!("leaked thread not reported: {:?}", outcome);
    };
    assert!(message.contains("join"), "unexpected message: {}", message);
}

/// Three threads, exhaustive: an atomic flag claimed by CAS is won
/// exactly once.
#[test]
fn cas_claim_is_exclusive() {
    let outcome = quick().check(|| {
        let claim = Arc::new(AtomicBool::new(false));
        let wins = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let (c2, w2) = (claim.clone(), wins.clone());
                thread::spawn(move || {
                    if c2
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        w2.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(wins.load(Ordering::Acquire), 1);
    });
    assert!(matches!(outcome, Outcome::Pass { complete: true, .. }), "{:?}", outcome);
}
