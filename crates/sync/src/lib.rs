//! # lwt-sync — synchronization primitives for the LWT runtimes
//!
//! Every lightweight-thread library the reproduced paper analyzes leans
//! on a small set of synchronization mechanisms, and the paper
//! attributes several headline performance effects to exactly which one
//! a runtime picked:
//!
//! * **Barriers** (`gcc` OpenMP, Converse Threads) make join time grow
//!   linearly with the thread count (paper Fig. 3).
//! * **Status-flag polling** (Argobots `ABT_thread_free`) and
//!   **full/empty-bit words** (Qthreads `qthread_readFF`) give constant
//!   joins but differ in who pays for the free.
//! * **Channels** (Go) implement out-of-order completion notification.
//! * **Mutex-protected shared queues** (Go, `gcc` tasks) add the
//!   contention the paper repeatedly blames for their curves.
//!
//! This crate implements each mechanism from scratch so the runtime
//! crates can mix and match them the way their C originals do:
//!
//! * [`Backoff`]/[`AdaptiveRelax`] — spin backoff and the escalating
//!   spin→yield→sleep wait strategy for oversubscribed hosts.
//! * [`SpinLock`] / [`SpinLockGuard`] — a test-and-test-and-set lock.
//! * [`SenseBarrier`] — a sense-reversing centralized barrier.
//! * [`FebCell`] / [`FebTable`] — Qthreads-style full/empty bits.
//! * [`Channel`] — a Go-style MPMC channel with pluggable waiting.
//! * [`CountLatch`] / [`Event`] — join counters and one-shot flags.
//! * [`Parker`] — an OS-thread parker (OpenMP "passive" wait policy).
//! * [`rng`] — deterministic in-repo PRNGs ([`rng::SplitMix64`],
//!   [`rng::Xoshiro256StarStar`]) behind the hermetic no-external-deps
//!   policy; used by victim selection, tests, and benches.
//!
//! ## Waiting without blocking the worker
//!
//! ULTs must never block their underlying OS thread, so every blocking
//! operation here takes a *relax strategy* — a closure invoked once per
//! failed attempt. OS-thread users pass [`spin_relax`] or
//! [`thread_yield_relax`]; LWT runtimes pass their own `yield`
//! so the worker keeps executing other work units while one waits.
//!
//! The same discipline extends beyond this crate: `lwt-net`'s reactor
//! waits (a ULT parked in `accept`/`read`/`write`) interleave the
//! unit-level yield with [`AdaptiveRelax`] and report through the FEB
//! wait counters (`feb_blocks`/`feb_wakes`), so an I/O wait is
//! accounted and watchdog-registered exactly like a [`FebCell`] block
//! — DESIGN.md §15 documents that contract.

#![warn(missing_docs)]

mod backoff;
mod barrier;
mod channel;
mod feb;
mod latch;
mod parking;
mod spin;
mod sysapi;

pub use backoff::{AdaptiveRelax, Backoff};
pub use barrier::SenseBarrier;
pub use channel::{Channel, RecvError, SendError, TryRecvError, TrySendError};
pub use feb::{FebCell, FebTable};
pub use latch::{CountLatch, Event};
pub use parking::Parker;
pub use spin::{SpinLock, SpinLockGuard};

// The PRNG module moved down into lwt-chaos (the chaos engine needs it
// and sits below this crate in the DAG); re-exported here so every
// historical `lwt_sync::rng` import keeps compiling unchanged.
pub use lwt_chaos::rng;

/// Relax strategy that spins with the CPU hint, never yielding.
///
/// Appropriate when the awaited condition is produced by another core
/// within nanoseconds; pathological under oversubscription.
#[inline]
pub fn spin_relax() {
    sysapi::spin_hint();
}

/// Relax strategy that yields the OS thread to the kernel scheduler.
///
/// This is the "passive" OpenMP wait policy the paper switches `gcc` to
/// in its task benchmarks to cut shared-queue contention.
#[inline]
pub fn thread_yield_relax() {
    sysapi::yield_thread();
}
