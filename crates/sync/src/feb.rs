//! Full/empty-bit (FEB) synchronization, Qthreads style.
//!
//! Qthreads tags memory words with a full/empty bit and synchronizes
//! ULTs through word-granularity operations: `writeEF` (wait empty,
//! write, mark full), `readFF` (wait full, read, leave full — the join
//! primitive the paper benchmarks), and `readFE` (wait full, take, mark
//! empty — a mutex acquire). Because the C library attaches FEBs to
//! arbitrary addresses, it keeps a hashed side table; the paper notes
//! this "hidden synchronization … may severely impact performance", an
//! effect [`FebTable`] reproduces faithfully.

use std::collections::HashMap;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::spin::SpinLock;
use crate::sysapi::{AtomicU8, UnsafeCell};

const EMPTY: u8 = 0;
const FULL: u8 = 1;
/// Transitional state while a writer/reader owns the slot.
const BUSY: u8 = 2;

/// Cap on chaos-injected stall rounds per acquire: even at a 100%
/// injection rate a FEB wait only *delays*, it never livelocks.
const MAX_INJECTED_STALLS: u32 = 3;

/// A typed cell guarded by a full/empty bit.
///
/// ```
/// use lwt_sync::{FebCell, thread_yield_relax};
/// let cell = FebCell::new();
/// cell.write_ef(7, thread_yield_relax);
/// assert_eq!(cell.read_ff(thread_yield_relax), 7);   // stays full
/// assert_eq!(cell.read_fe(thread_yield_relax), 7);   // now empty
/// assert!(!cell.is_full());
/// ```
pub struct FebCell<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the state machine grants exclusive access during BUSY and
// publishes the value with Release/Acquire transitions, so the cell is
// a proper synchronization point for Send values.
unsafe impl<T: Send> Send for FebCell<T> {}
// SAFETY: see above; `T: Send` is enough because a value is only ever
// observed by one side at a time (readFF copies require T: Copy).
unsafe impl<T: Send> Sync for FebCell<T> {}

impl<T> FebCell<T> {
    /// Create an *empty* cell.
    #[must_use]
    pub fn new() -> Self {
        FebCell {
            state: AtomicU8::new(EMPTY),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Create a *full* cell holding `value`.
    #[must_use]
    pub fn full(value: T) -> Self {
        FebCell {
            state: AtomicU8::new(FULL),
            value: UnsafeCell::new(MaybeUninit::new(value)),
        }
    }

    /// Whether the bit is currently full (racy; for tests/diagnostics).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.state.load(Ordering::Acquire) == FULL
    }

    /// Acquire the slot by moving `from` → `BUSY`, relaxing in between.
    ///
    /// Chaos decision point: `FebStallWake` delays the acquire for up
    /// to [`MAX_INJECTED_STALLS`] extra relax rounds (a late wake),
    /// `FebSpuriousWake` adds a relax round after a genuine miss (a
    /// wake without the condition). Both only reorder/delay — they
    /// never drop the acquire. Waits that actually miss register with
    /// the stall watchdog so a never-satisfied FEB shows up in the
    /// blocked-unit table instead of hanging silently.
    fn acquire_from(&self, from: u8, relax: &mut impl FnMut()) {
        let mut injected = 0u32;
        // Held for the whole wait so the watchdog sees the block.
        let mut _watch: Option<lwt_chaos::BlockGuard> = None;
        // Tracks whether this wait genuinely missed (the guard alone
        // can't: block_enter returns None when the watchdog is off).
        let mut blocked = false;
        loop {
            if injected < MAX_INJECTED_STALLS
                && lwt_chaos::should_inject(lwt_chaos::FaultSite::FebStallWake)
            {
                injected += 1;
                relax();
                continue;
            }
            match self
                .state
                .compare_exchange(from, BUSY, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => {
                    if blocked {
                        // The wait actually blocked; record the resume
                        // (carries the waiter's span when traced).
                        lwt_metrics::emit(lwt_metrics::EventKind::FebWake, 0);
                    }
                    return;
                }
                Err(_) => {
                    if !blocked {
                        blocked = true;
                        _watch = lwt_chaos::block_enter(
                            lwt_chaos::BlockKind::Feb,
                            std::ptr::from_ref(self) as u64,
                        );
                        lwt_metrics::emit(lwt_metrics::EventKind::FebBlock, 0);
                    }
                    relax();
                    if injected < MAX_INJECTED_STALLS
                        && lwt_chaos::should_inject(lwt_chaos::FaultSite::FebSpuriousWake)
                    {
                        injected += 1;
                        relax();
                    }
                }
            }
        }
    }

    /// Wait (via `relax`) until the cell is full or `timeout` elapses;
    /// `true` iff fullness was observed. The cell is not modified —
    /// pair with [`FebCell::read_ff`]/[`FebCell::try_read_fe`] after a
    /// `true` return. This is the degrade-gracefully alternative to
    /// the unbounded FEB waits: a never-filled cell costs `timeout`,
    /// not forever.
    pub fn wait_timeout(&self, timeout: Duration, mut relax: impl FnMut()) -> bool {
        let deadline = Instant::now() + timeout;
        let watch = lwt_chaos::block_enter(
            lwt_chaos::BlockKind::Feb,
            std::ptr::from_ref(self) as u64,
        );
        loop {
            if self.is_full() {
                drop(watch);
                return true;
            }
            if Instant::now() >= deadline {
                drop(watch);
                return false;
            }
            relax();
        }
    }

    /// Wait until empty, then write `value` and mark full
    /// (Qthreads `qthread_writeEF`).
    pub fn write_ef(&self, value: T, mut relax: impl FnMut()) {
        self.acquire_from(EMPTY, &mut relax);
        // SAFETY: BUSY grants us exclusive access; the slot is empty so
        // no previous value needs dropping.
        unsafe { (*self.value.get()).write(value) };
        self.state.store(FULL, Ordering::Release);
    }

    /// Write `value` unconditionally and mark full
    /// (Qthreads `qthread_writeF`). Any previous value is dropped.
    pub fn write_f(&self, value: T, mut relax: impl FnMut()) {
        // Take the slot from either stable state.
        let prev = loop {
            let cur = self.state.load(Ordering::Relaxed);
            if cur == BUSY {
                relax();
                continue;
            }
            if self
                .state
                .compare_exchange(cur, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break cur;
            }
            relax();
        };
        // SAFETY: exclusive via BUSY; drop the old value only if full.
        unsafe {
            if prev == FULL {
                (*self.value.get()).assume_init_drop();
            }
            (*self.value.get()).write(value);
        }
        self.state.store(FULL, Ordering::Release);
    }

    /// Wait until full, then take the value and mark empty
    /// (Qthreads `qthread_readFE` — a mutex acquire).
    pub fn read_fe(&self, mut relax: impl FnMut()) -> T {
        self.acquire_from(FULL, &mut relax);
        // SAFETY: exclusive via BUSY; the slot was full.
        let value = unsafe { (*self.value.get()).assume_init_read() };
        self.state.store(EMPTY, Ordering::Release);
        value
    }

    /// Try [`FebCell::read_fe`] without waiting.
    pub fn try_read_fe(&self) -> Option<T> {
        if self
            .state
            .compare_exchange(FULL, BUSY, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        // SAFETY: exclusive via BUSY; the slot was full.
        let value = unsafe { (*self.value.get()).assume_init_read() };
        self.state.store(EMPTY, Ordering::Release);
        Some(value)
    }

    /// Mark the cell empty, dropping any stored value
    /// (Qthreads `qthread_empty` / purge).
    pub fn purge(&self, mut relax: impl FnMut()) {
        let prev = loop {
            let cur = self.state.load(Ordering::Relaxed);
            if cur == BUSY {
                relax();
                continue;
            }
            if self
                .state
                .compare_exchange(cur, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break cur;
            }
            relax();
        };
        if prev == FULL {
            // SAFETY: exclusive via BUSY; the slot was full.
            unsafe { (*self.value.get()).assume_init_drop() };
        }
        self.state.store(EMPTY, Ordering::Release);
    }
}

impl<T: Copy> FebCell<T> {
    /// Wait until full, then read a copy, leaving the cell full
    /// (Qthreads `qthread_readFF` — the join primitive).
    pub fn read_ff(&self, mut relax: impl FnMut()) -> T {
        self.acquire_from(FULL, &mut relax);
        // SAFETY: exclusive via BUSY; the slot was full; T: Copy so the
        // value stays initialized after the read.
        let value = unsafe { (*self.value.get()).assume_init() };
        self.state.store(FULL, Ordering::Release);
        value
    }
}

impl<T> Default for FebCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for FebCell<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == FULL {
            // SAFETY: &mut self gives exclusivity; the slot is full.
            unsafe { (*self.value.get()).assume_init_drop() };
        }
    }
}

impl<T> std::fmt::Debug for FebCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self.state.load(Ordering::Relaxed) {
            EMPTY => "empty",
            FULL => "full",
            _ => "busy",
        };
        write!(f, "FebCell({s})")
    }
}

/// Address-keyed FEB side table — the "FEB on any word of memory"
/// facility of Qthreads, including its hidden-synchronization cost.
///
/// Addresses hash into a fixed number of spin-locked buckets; each
/// address lazily materializes a [`FebCell<u64>`]. All waiting happens
/// outside the bucket locks.
///
/// ```
/// use lwt_sync::{FebTable, thread_yield_relax};
/// let table = FebTable::with_buckets(16);
/// let x = 0u64; // any word can carry a FEB
/// let addr = std::ptr::addr_of!(x) as usize;
/// table.write_ef(addr, 99, thread_yield_relax);
/// assert_eq!(table.read_ff(addr, thread_yield_relax), 99);
/// ```
pub struct FebTable {
    buckets: Box<[SpinLock<HashMap<usize, Arc<FebCell<u64>>>>]>,
}

impl FebTable {
    /// Create a table with `buckets` hash buckets (rounded up to a
    /// power of two, minimum 1).
    #[must_use]
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.max(1).next_power_of_two();
        FebTable {
            buckets: (0..n).map(|_| SpinLock::new(HashMap::new())).collect(),
        }
    }

    /// Fetch (or create, in `EMPTY` state) the cell for `addr`.
    fn cell(&self, addr: usize) -> Arc<FebCell<u64>> {
        // Fibonacci hashing over the address.
        let h = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let idx = h & (self.buckets.len() - 1);
        let mut bucket = self.buckets[idx].lock();
        bucket.entry(addr).or_default().clone()
    }

    /// `writeEF` on the FEB associated with `addr`.
    pub fn write_ef(&self, addr: usize, value: u64, relax: impl FnMut()) {
        self.cell(addr).write_ef(value, relax);
    }

    /// `readFF` on the FEB associated with `addr`.
    pub fn read_ff(&self, addr: usize, relax: impl FnMut()) -> u64 {
        self.cell(addr).read_ff(relax)
    }

    /// `readFE` on the FEB associated with `addr`.
    pub fn read_fe(&self, addr: usize, relax: impl FnMut()) -> u64 {
        self.cell(addr).read_fe(relax)
    }

    /// Whether the FEB for `addr` is full. Creates the FEB if absent.
    #[must_use]
    pub fn is_full(&self, addr: usize) -> bool {
        self.cell(addr).is_full()
    }

    /// Drop the FEB state associated with `addr`.
    pub fn remove(&self, addr: usize) {
        let h = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let idx = h & (self.buckets.len() - 1);
        self.buckets[idx].lock().remove(&addr);
    }
}

impl Default for FebTable {
    fn default() -> Self {
        Self::with_buckets(64)
    }
}

impl std::fmt::Debug for FebTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FebTable")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_yield_relax;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn write_then_read_round_trip() {
        let c = FebCell::new();
        assert!(!c.is_full());
        c.write_ef(1u64, thread_yield_relax);
        assert!(c.is_full());
        assert_eq!(c.read_ff(thread_yield_relax), 1);
        assert!(c.is_full());
        assert_eq!(c.read_fe(thread_yield_relax), 1);
        assert!(!c.is_full());
    }

    #[test]
    fn write_f_overwrites_and_drops() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let c = FebCell::new();
        c.write_f(D, thread_yield_relax);
        c.write_f(D, thread_yield_relax); // drops the first
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
        drop(c); // drops the second
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn purge_empties_and_drops() {
        let c = FebCell::full(String::from("x"));
        assert!(c.is_full());
        c.purge(thread_yield_relax);
        assert!(!c.is_full());
        // Purging an empty cell is a no-op.
        c.purge(thread_yield_relax);
        assert!(!c.is_full());
    }

    #[test]
    fn try_read_fe_does_not_block() {
        let c: FebCell<u32> = FebCell::new();
        assert_eq!(c.try_read_fe(), None);
        c.write_ef(5, thread_yield_relax);
        assert_eq!(c.try_read_fe(), Some(5));
        assert_eq!(c.try_read_fe(), None);
    }

    #[test]
    fn producer_consumer_through_cell() {
        let c = Arc::new(FebCell::new());
        let p = c.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                p.write_ef(i, thread_yield_relax);
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(c.read_fe(thread_yield_relax));
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn readfe_acts_as_mutex() {
        // Classic FEB mutex: the word holds a token; readFE acquires,
        // writeEF releases. A counter protected this way must be exact.
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(FebCell::full(0u64));
        let counter = Arc::new(std::cell::UnsafeCell::new(0usize));
        // SAFETY wrapper: the FEB mutex serializes access.
        struct Shared(Arc<std::cell::UnsafeCell<usize>>);
        unsafe impl Send for Shared {}
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = lock.clone();
                let shared = Shared(counter.clone());
                std::thread::spawn(move || {
                    // Capture the whole wrapper, not the disjoint field,
                    // so the manual `Send` impl applies.
                    let shared = shared;
                    for _ in 0..ITERS {
                        let token = lock.read_fe(thread_yield_relax);
                        // SAFETY: we hold the FEB token exclusively.
                        unsafe { *shared.0.get() += 1 };
                        lock.write_ef(token, thread_yield_relax);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let token = lock.read_fe(thread_yield_relax);
        assert_eq!(token, 0);
        // SAFETY: all workers joined.
        assert_eq!(unsafe { *counter.get() }, THREADS * ITERS);
    }

    #[test]
    fn table_addresses_are_independent() {
        let t = FebTable::with_buckets(4);
        t.write_ef(0x1000, 1, thread_yield_relax);
        t.write_ef(0x2000, 2, thread_yield_relax);
        assert_eq!(t.read_ff(0x1000, thread_yield_relax), 1);
        assert_eq!(t.read_ff(0x2000, thread_yield_relax), 2);
        assert!(t.is_full(0x1000));
        t.remove(0x1000);
        assert!(!t.is_full(0x1000)); // recreated empty
    }

    #[test]
    fn table_cross_thread_join() {
        let t = Arc::new(FebTable::default());
        let addr = 0xBEEF_usize;
        let t2 = t.clone();
        let child = std::thread::spawn(move || {
            t2.write_ef(addr, 77, thread_yield_relax);
        });
        assert_eq!(t.read_ff(addr, thread_yield_relax), 77);
        child.join().unwrap();
    }

    #[test]
    fn wait_timeout_observes_fullness_or_expires() {
        let c: FebCell<u64> = FebCell::new();
        assert!(!c.wait_timeout(Duration::from_millis(20), thread_yield_relax));
        c.write_ef(9, thread_yield_relax);
        assert!(c.wait_timeout(Duration::from_millis(20), thread_yield_relax));
        assert_eq!(c.read_ff(thread_yield_relax), 9); // untouched by the wait
    }

    #[test]
    fn injected_feb_stalls_only_delay() {
        // Even at 100% injection the acquire completes.
        lwt_chaos::force_chaos(42, 100);
        let c = FebCell::full(5u64);
        assert_eq!(c.read_fe(thread_yield_relax), 5);
        c.write_ef(6, thread_yield_relax);
        assert_eq!(c.read_ff(thread_yield_relax), 6);
        lwt_chaos::reset_to_env();
    }

    #[test]
    fn debug_formats() {
        let c: FebCell<u8> = FebCell::new();
        assert_eq!(format!("{c:?}"), "FebCell(empty)");
        let c = FebCell::full(1u8);
        assert_eq!(format!("{c:?}"), "FebCell(full)");
        let t = FebTable::with_buckets(3);
        assert!(format!("{t:?}").contains("buckets: 4")); // rounded up
    }
}
