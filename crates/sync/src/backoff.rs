//! Bounded exponential backoff for contended spin loops.

/// Exponential backoff helper.
///
/// Each call to [`Backoff::spin`] busy-waits for an exponentially growing
/// number of `spin_loop` hints up to a cap; once the cap is reached,
/// [`Backoff::is_saturated`] turns true and callers should degrade to a
/// heavier strategy (yield the OS thread, yield the ULT, or park).
///
/// ```
/// use lwt_sync::Backoff;
/// let mut b = Backoff::new();
/// while !b.is_saturated() {
///     b.spin();
/// }
/// assert!(b.is_saturated());
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Exponent cap: 2^6 = 64 spin hints per `spin` call at saturation.
    const SPIN_LIMIT: u32 = 6;

    /// Fresh backoff at the smallest delay.
    #[must_use]
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Busy-wait for the current delay and double it (up to the cap).
    #[inline]
    pub fn spin(&mut self) {
        // Under the model checker one logical spin hint (= one
        // scheduler yield) per call is enough — repeating it 2^step
        // times would only multiply schedule points.
        #[cfg(not(lwt_model))]
        for _ in 0..(1u32 << self.step.min(Self::SPIN_LIMIT)) {
            std::hint::spin_loop();
        }
        #[cfg(lwt_model)]
        crate::sysapi::spin_hint();
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Whether the delay has reached its cap and the caller should
    /// switch to yielding or parking.
    #[inline]
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Reset to the smallest delay (call after making progress).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_after_limit_steps() {
        let mut b = Backoff::new();
        assert!(!b.is_saturated());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.spin();
        }
        assert!(b.is_saturated());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut b = Backoff::new();
        for _ in 0..10 {
            b.spin();
        }
        assert!(b.is_saturated());
        b.reset();
        assert!(!b.is_saturated());
    }

    #[test]
    fn spin_after_saturation_is_harmless() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(b.is_saturated());
    }
}

/// Escalating wait strategy for potentially long waits: spin briefly,
/// then yield the OS thread, then sleep in short naps.
///
/// The sleep tier is what makes oversubscribed hosts (cores < workers)
/// behave: on mainline Linux CFS, `sched_yield` does *not* deschedule a
/// busy-waiting thread before its timeslice expires, so a spin/yield
/// waiter steals whole ~millisecond slices from the thread that holds
/// the awaited work. Escalating to `sleep` caps that interference at
/// the nap length. The first two tiers keep short waits (the common
/// case on an unloaded machine) in the nanosecond/microsecond range.
#[derive(Debug, Default)]
pub struct AdaptiveRelax {
    rounds: u32,
}

impl AdaptiveRelax {
    /// Rounds of pure spinning before yielding.
    const SPIN_ROUNDS: u32 = 64;
    /// Rounds of yielding before sleeping (~hundreds of µs of grace).
    const YIELD_ROUNDS: u32 = 512;
    /// Nap length once escalated.
    const NAP: std::time::Duration = std::time::Duration::from_micros(50);

    /// Fresh strategy at the cheapest tier.
    #[must_use]
    pub fn new() -> Self {
        AdaptiveRelax { rounds: 0 }
    }

    /// Wait one round, escalating through the tiers.
    #[inline]
    pub fn relax(&mut self) {
        if self.rounds < Self::SPIN_ROUNDS {
            crate::sysapi::spin_hint();
        } else if self.rounds < Self::YIELD_ROUNDS {
            crate::sysapi::yield_thread();
        } else {
            crate::sysapi::nap(Self::NAP);
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Back to the cheapest tier (call after progress).
    #[inline]
    pub fn reset(&mut self) {
        self.rounds = 0;
    }

    /// Whether the strategy has escalated to sleeping.
    #[must_use]
    pub fn is_sleeping(&self) -> bool {
        self.rounds >= Self::YIELD_ROUNDS
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::AdaptiveRelax;

    #[test]
    fn escalates_to_sleeping() {
        let mut r = AdaptiveRelax::new();
        assert!(!r.is_sleeping());
        for _ in 0..AdaptiveRelax::YIELD_ROUNDS {
            // Avoid actually sleeping in the loop: stop just before.
            if r.is_sleeping() {
                break;
            }
            r.relax();
        }
        assert!(r.is_sleeping());
        r.reset();
        assert!(!r.is_sleeping());
    }
}
