//! A Go-style MPMC channel.
//!
//! The paper singles out Go's synchronization as "an out-of-order
//! communication channel that … can obtain better results than the
//! sequential mechanisms": instead of joining work units in creation
//! order (as Argobots/Qthreads joins do), the master receives one
//! completion message per work unit *in whatever order they finish*.
//! [`Channel`] reproduces that: a bounded or unbounded MPMC queue with
//! non-blocking `try_*` operations plus relax-parameterized blocking
//! ones, so goroutine-model ULTs yield their worker instead of blocking
//! it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::spin::SpinLock;

/// Error returned by [`Channel::send`] when the channel is closed.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Channel::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and currently full.
    Full(T),
    /// The channel is closed.
    Closed(T),
}

/// Error returned by [`Channel::recv`] when the channel is closed and
/// drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Channel::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// The channel is closed and fully drained.
    Closed,
}

/// A multi-producer multi-consumer channel.
///
/// ```
/// use std::sync::Arc;
/// use lwt_sync::{Channel, thread_yield_relax};
///
/// let ch = Arc::new(Channel::unbounded());
/// let tx = ch.clone();
/// let t = std::thread::spawn(move || {
///     for i in 0..10u32 {
///         tx.send(i, lwt_sync::thread_yield_relax).unwrap();
///     }
/// });
/// let mut sum = 0;
/// for _ in 0..10 {
///     sum += ch.recv(thread_yield_relax).unwrap();
/// }
/// assert_eq!(sum, 45);
/// t.join().unwrap();
/// ```
pub struct Channel<T> {
    queue: SpinLock<VecDeque<T>>,
    capacity: Option<usize>,
    closed: AtomicBool,
}

impl<T> Channel<T> {
    /// A channel with unlimited buffering.
    #[must_use]
    pub fn unbounded() -> Self {
        Channel {
            queue: SpinLock::new(VecDeque::new()),
            capacity: None,
            closed: AtomicBool::new(false),
        }
    }

    /// A channel buffering at most `capacity` messages (like
    /// `make(chan T, capacity)`; capacity 0 is rounded up to 1 — true
    /// rendezvous semantics are not needed by the Go-model runtime).
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Channel {
            queue: SpinLock::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: Some(capacity.max(1)),
            closed: AtomicBool::new(false),
        }
    }

    /// Close the channel: sends fail, receives drain then fail.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`Channel::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Number of buffered messages (racy; diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether no messages are buffered (racy; diagnostics only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Enqueue without waiting.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Closed`] after [`Channel::close`];
    /// [`TrySendError::Full`] when a bounded channel is at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        if self.is_closed() {
            return Err(TrySendError::Closed(value));
        }
        let mut q = self.queue.lock();
        if let Some(cap) = self.capacity {
            if q.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        q.push_back(value);
        Ok(())
    }

    /// Enqueue, relaxing while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] if the channel is (or becomes) closed.
    pub fn send(&self, value: T, mut relax: impl FnMut()) -> Result<(), SendError<T>> {
        let mut pending = value;
        loop {
            match self.try_send(pending) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    pending = v;
                    relax();
                }
            }
        }
    }

    /// Dequeue without waiting.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is buffered;
    /// [`TryRecvError::Closed`] when closed *and* drained.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.queue.lock();
        match q.pop_front() {
            Some(v) => Ok(v),
            None if self.is_closed() => Err(TryRecvError::Closed),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeue, relaxing while empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is closed and drained.
    pub fn recv(&self, mut relax: impl FnMut()) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Closed) => return Err(RecvError),
                Err(TryRecvError::Empty) => relax(),
            }
        }
    }
}

impl<T> std::fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_yield_relax;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let ch = Channel::unbounded();
        for i in 0..5 {
            ch.try_send(i).unwrap();
        }
        let got: Vec<_> = (0..5).map(|_| ch.try_recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(ch.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_reports_full() {
        let ch = Channel::bounded(2);
        ch.try_send(1).unwrap();
        ch.try_send(2).unwrap();
        assert_eq!(ch.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(ch.recv(thread_yield_relax), Ok(1));
        ch.try_send(3).unwrap();
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn zero_capacity_rounds_to_one() {
        let ch = Channel::bounded(0);
        ch.try_send(9).unwrap();
        assert_eq!(ch.try_send(10), Err(TrySendError::Full(10)));
    }

    #[test]
    fn close_semantics() {
        let ch = Channel::unbounded();
        ch.try_send(1).unwrap();
        ch.close();
        assert_eq!(ch.try_send(2), Err(TrySendError::Closed(2)));
        // Drains buffered messages first …
        assert_eq!(ch.try_recv(), Ok(1));
        // … then reports closed.
        assert_eq!(ch.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(ch.recv(thread_yield_relax), Err(RecvError));
        assert!(ch.is_empty());
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 2_000;
        let ch = Arc::new(Channel::unbounded());
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ch = ch.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        ch.send(p * PER_PRODUCER + i, thread_yield_relax).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let ch = ch.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = ch.recv(thread_yield_relax) {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        ch.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_order_completion_join() {
        // The Go-model join: N workers send their id when done; the
        // master receives N messages in completion order.
        const N: usize = 16;
        let ch = Arc::new(Channel::bounded(N));
        let workers: Vec<_> = (0..N)
            .map(|id| {
                let ch = ch.clone();
                std::thread::spawn(move || ch.send(id, thread_yield_relax).unwrap())
            })
            .collect();
        let mut seen = [false; N];
        for _ in 0..N {
            let id = ch.recv(thread_yield_relax).unwrap();
            assert!(!std::mem::replace(&mut seen[id], true));
        }
        for w in workers {
            w.join().unwrap();
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn debug_formats() {
        let ch: Channel<u8> = Channel::bounded(4);
        let s = format!("{ch:?}");
        assert!(s.contains("capacity: Some(4)"));
    }
}
