//! A test-and-test-and-set spin lock with exponential backoff.
//!
//! This is the lock guarding every "mutex-protected shared queue" in the
//! workspace (Go's global run queue, `gcc` OpenMP's shared task queue,
//! MassiveThreads' stealable ready deques). Keeping it home-grown — not
//! `std::sync::Mutex` — matters for the reproduction: the paper's
//! contention effects come from *spinning* work-unit queues, and the
//! lock must also be safe to take from ULT context, where blocking the
//! OS thread in a futex could deadlock the worker.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;

use crate::backoff::Backoff;
use crate::sysapi::{self, AtomicBool, UnsafeCell};

/// A spin lock protecting a `T`.
///
/// ```
/// use lwt_sync::SpinLock;
/// let lock = SpinLock::new(0u64);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the required mutual exclusion; sending a
// SpinLock sends its value.
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}
// SAFETY: access to `value` only happens through the guard, which holds
// the lock; `T: Send` suffices because only one thread sees `&mut T` at
// a time (same bound set as std's Mutex).
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Create an unlocked lock holding `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquire the lock, spinning with backoff until it is free.
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            // Test-and-test-and-set: spin on a plain load so the cache
            // line stays shared while the lock is held.
            while self.locked.load(Ordering::Relaxed) {
                backoff.spin();
                if backoff.is_saturated() {
                    sysapi::yield_thread();
                }
            }
        }
    }

    /// Try to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Access the value mutably without locking (requires `&mut self`,
    /// so exclusivity is statically guaranteed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinLock").field("value", &&*g).finish(),
            None => f.write_str("SpinLock { <locked> }"),
        }
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        SpinLock::new(T::default())
    }
}

/// RAII guard for [`SpinLock`]; releases on drop.
pub struct SpinLockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinLockGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_mutation() {
        let lock = SpinLock::new(vec![1, 2]);
        lock.lock().push(3);
        assert_eq!(*lock.lock(), vec![1, 2, 3]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.try_lock().unwrap();
        assert!(lock.try_lock().is_none());
        assert!(lock.is_locked());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut lock = SpinLock::new(5);
        *lock.get_mut() += 1;
        assert_eq!(*lock.lock(), 6);
    }

    #[test]
    fn debug_formats() {
        let lock = SpinLock::new(1);
        assert!(format!("{lock:?}").contains('1'));
        let g = lock.lock();
        assert!(format!("{lock:?}").contains("locked"));
        drop(g);
    }

    #[test]
    fn contended_counter_is_exact() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 10_000;
        let lock = Arc::new(SpinLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), THREADS * PER_THREAD);
    }

    #[test]
    fn guard_release_makes_value_visible() {
        // Acquire/Release pairing: a write made under the lock must be
        // visible to the next owner on another thread.
        let lock = Arc::new(SpinLock::new(0u64));
        let l2 = lock.clone();
        let t = std::thread::spawn(move || {
            loop {
                let g = l2.lock();
                if *g != 0 {
                    break *g;
                }
                drop(g);
                std::thread::yield_now();
            }
        });
        *lock.lock() = 42;
        assert_eq!(t.join().unwrap(), 42);
    }
}
