//! OS-thread parking — the OpenMP "passive" wait policy.
//!
//! The paper's task benchmarks set `OMP_WAIT_POLICY=passive` for `gcc`
//! so idle threads stop hammering the shared task queue. [`Parker`] is
//! the primitive behind that policy: a one-token park/unpark pair built
//! on a mutex + condvar, with the token preventing lost wakeups.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

const IDLE: u8 = 0;
const PARKED: u8 = 1;
const NOTIFIED: u8 = 2;

/// A one-token thread parker.
///
/// [`Parker::unpark`] deposits a token; [`Parker::park`] consumes one,
/// blocking until a token arrives. An unpark that happens *before* the
/// park is not lost.
///
/// ```
/// use std::sync::Arc;
/// use lwt_sync::Parker;
/// let p = Arc::new(Parker::new());
/// p.unpark();     // token deposited early
/// p.park();       // consumes it without blocking
/// ```
#[derive(Debug, Default)]
pub struct Parker {
    state: AtomicU8,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl Parker {
    /// A parker with no pending token.
    #[must_use]
    pub fn new() -> Self {
        Parker {
            state: AtomicU8::new(IDLE),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Block the calling OS thread until a token is available, then
    /// consume it.
    pub fn park(&self) {
        // Fast path: token already present.
        if self
            .state
            .compare_exchange(NOTIFIED, IDLE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        let mut guard = self.lock.lock().expect("parker mutex poisoned");
        match self
            .state
            .compare_exchange(IDLE, PARKED, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {}
            // A token arrived between the fast path and taking the lock.
            Err(_) => {
                self.state.store(IDLE, Ordering::Relaxed);
                return;
            }
        }
        while self.state.load(Ordering::Acquire) != NOTIFIED {
            guard = self.cvar.wait(guard).expect("parker mutex poisoned");
        }
        self.state.store(IDLE, Ordering::Relaxed);
    }

    /// Like [`Parker::park`] but gives up after `timeout`.
    ///
    /// Returns `true` if a token was consumed, `false` on timeout.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        if self
            .state
            .compare_exchange(NOTIFIED, IDLE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return true;
        }
        let mut guard = self.lock.lock().expect("parker mutex poisoned");
        if self
            .state
            .compare_exchange(IDLE, PARKED, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            self.state.store(IDLE, Ordering::Relaxed);
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        while self.state.load(Ordering::Acquire) != NOTIFIED {
            let now = std::time::Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                // Timed out: retract the PARKED state unless a token
                // raced in at the last moment.
                let raced = self.state.swap(IDLE, Ordering::Acquire) == NOTIFIED;
                return raced;
            };
            let (g, _timeout_result) = self
                .cvar
                .wait_timeout(guard, left)
                .expect("parker mutex poisoned");
            guard = g;
        }
        self.state.store(IDLE, Ordering::Relaxed);
        true
    }

    /// Deposit a token, waking the parked thread if any. Multiple
    /// unparks coalesce into a single token.
    pub fn unpark(&self) {
        let prev = self.state.swap(NOTIFIED, Ordering::Release);
        if prev == PARKED {
            // Take the lock to ensure the parker is actually inside
            // `cvar.wait` (not between the state change and the wait).
            drop(self.lock.lock().expect("parker mutex poisoned"));
            self.cvar.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn pre_deposited_token_skips_blocking() {
        let p = Parker::new();
        p.unpark();
        let t0 = Instant::now();
        p.park();
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn unparks_coalesce() {
        let p = Parker::new();
        p.unpark();
        p.unpark();
        p.park();
        // Second park would block: verify via timeout.
        assert!(!p.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn cross_thread_wakeup() {
        let p = Arc::new(Parker::new());
        let p2 = p.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p2.unpark();
        });
        p.park();
        t.join().unwrap();
    }

    #[test]
    fn timeout_expires_without_token() {
        let p = Parker::new();
        let t0 = Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(15)));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn repeated_park_unpark_cycles() {
        let p = Arc::new(Parker::new());
        let p2 = p.clone();
        const ROUNDS: usize = 200;
        let t = std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                p2.park();
            }
        });
        for _ in 0..ROUNDS {
            p.unpark();
            // Give the parker a chance to consume; coalescing means we
            // must not outrun it.
            while p.state.load(Ordering::Relaxed) == NOTIFIED {
                std::thread::yield_now();
            }
        }
        t.join().unwrap();
    }
}
