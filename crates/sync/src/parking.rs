//! OS-thread parking — the OpenMP "passive" wait policy.
//!
//! The paper's task benchmarks set `OMP_WAIT_POLICY=passive` for `gcc`
//! so idle threads stop hammering the shared task queue. [`Parker`] is
//! the primitive behind that policy: a one-token park/unpark pair built
//! on a mutex + condvar, with the token preventing lost wakeups.
//!
//! ## Model checkability
//!
//! The token state machine — the part with the sleep/wake race — runs
//! on a [`crate::sysapi`] atomic, so under `--cfg lwt_model` the *real*
//! transition code is explored by the deterministic checker
//! (`crates/model/tests/park.rs`). Only the OS blocking primitive is
//! swapped: the model build replaces the condvar wait with a yield
//! loop on the state atomic (a lost token then shows up as a reported
//! livelock instead of a hung test).

use std::sync::atomic::Ordering;
#[cfg(not(lwt_model))]
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::sysapi::AtomicU8;

const IDLE: u8 = 0;
const PARKED: u8 = 1;
const NOTIFIED: u8 = 2;

/// How many state polls a model-build `park_timeout` makes before
/// giving up — the logical-time stand-in for the wall-clock deadline.
#[cfg(lwt_model)]
const MODEL_TIMEOUT_POLLS: usize = 4;

/// A one-token thread parker.
///
/// [`Parker::unpark`] deposits a token; [`Parker::park`] consumes one,
/// blocking until a token arrives. An unpark that happens *before* the
/// park is not lost.
///
/// ```
/// use std::sync::Arc;
/// use lwt_sync::Parker;
/// let p = Arc::new(Parker::new());
/// p.unpark();     // token deposited early
/// p.park();       // consumes it without blocking
/// ```
#[derive(Debug)]
pub struct Parker {
    state: AtomicU8,
    #[cfg(not(lwt_model))]
    lock: Mutex<()>,
    #[cfg(not(lwt_model))]
    cvar: Condvar,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker {
    /// A parker with no pending token.
    #[must_use]
    pub fn new() -> Self {
        Parker {
            state: AtomicU8::new(IDLE),
            #[cfg(not(lwt_model))]
            lock: Mutex::new(()),
            #[cfg(not(lwt_model))]
            cvar: Condvar::new(),
        }
    }

    /// Consume a pre-deposited token without blocking, or transition
    /// IDLE→PARKED. Returns `true` when the caller can return at once
    /// (a token was consumed). (The real build inlines this sequence
    /// under its mutex, so only the model paths call it.)
    #[cfg(lwt_model)]
    fn claim_or_mark_parked(&self) -> bool {
        // Fast path: token already present.
        if self
            .state
            .compare_exchange(NOTIFIED, IDLE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return true;
        }
        match self
            .state
            .compare_exchange(IDLE, PARKED, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => false,
            // A token arrived between the fast path and here.
            Err(_) => {
                self.state.store(IDLE, Ordering::Relaxed);
                true
            }
        }
    }

    /// Block the calling OS thread until a token is available, then
    /// consume it.
    #[cfg(not(lwt_model))]
    pub fn park(&self) {
        if self
            .state
            .compare_exchange(NOTIFIED, IDLE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        let mut guard = self.lock.lock().expect("parker mutex poisoned");
        match self
            .state
            .compare_exchange(IDLE, PARKED, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {}
            // A token arrived between the fast path and taking the lock.
            Err(_) => {
                self.state.store(IDLE, Ordering::Relaxed);
                return;
            }
        }
        while self.state.load(Ordering::Acquire) != NOTIFIED {
            guard = self.cvar.wait(guard).expect("parker mutex poisoned");
        }
        self.state.store(IDLE, Ordering::Relaxed);
    }

    /// Model build: same token machine, blocking replaced by yields.
    /// A token that never arrives exhausts the checker's step budget
    /// and is reported as a livelock — exactly what a lost wake is.
    #[cfg(lwt_model)]
    pub fn park(&self) {
        if self.claim_or_mark_parked() {
            return;
        }
        while self.state.load(Ordering::Acquire) != NOTIFIED {
            crate::sysapi::spin_hint();
        }
        self.state.store(IDLE, Ordering::Relaxed);
    }

    /// Like [`Parker::park`] but gives up after `timeout`.
    ///
    /// Returns `true` if a token was consumed, `false` on timeout.
    #[cfg(not(lwt_model))]
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        if self
            .state
            .compare_exchange(NOTIFIED, IDLE, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return true;
        }
        let mut guard = self.lock.lock().expect("parker mutex poisoned");
        if self
            .state
            .compare_exchange(IDLE, PARKED, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            self.state.store(IDLE, Ordering::Relaxed);
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        while self.state.load(Ordering::Acquire) != NOTIFIED {
            let now = std::time::Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                // Timed out: retract the PARKED state unless a token
                // raced in at the last moment.
                let raced = self.state.swap(IDLE, Ordering::Acquire) == NOTIFIED;
                return raced;
            };
            let (g, _timeout_result) = self
                .cvar
                .wait_timeout(guard, left)
                .expect("parker mutex poisoned");
            guard = g;
        }
        self.state.store(IDLE, Ordering::Relaxed);
        true
    }

    /// Model build: a bounded number of polls stands in for the
    /// wall-clock deadline; the timed-out retract keeps the exact
    /// last-moment-token race of the real implementation.
    #[cfg(lwt_model)]
    pub fn park_timeout(&self, _timeout: Duration) -> bool {
        if self.claim_or_mark_parked() {
            return true;
        }
        for _ in 0..MODEL_TIMEOUT_POLLS {
            if self.state.load(Ordering::Acquire) == NOTIFIED {
                self.state.store(IDLE, Ordering::Relaxed);
                return true;
            }
            crate::sysapi::spin_hint();
        }
        let raced = self.state.swap(IDLE, Ordering::Acquire) == NOTIFIED;
        raced
    }

    /// Deposit a token, waking the parked thread if any. Multiple
    /// unparks coalesce into a single token.
    pub fn unpark(&self) {
        let prev = self.state.swap(NOTIFIED, Ordering::Release);
        #[cfg(not(lwt_model))]
        if prev == PARKED {
            // Take the lock to ensure the parker is actually inside
            // `cvar.wait` (not between the state change and the wait).
            drop(self.lock.lock().expect("parker mutex poisoned"));
            self.cvar.notify_one();
        }
        #[cfg(lwt_model)]
        let _ = prev;
    }
}

#[cfg(all(test, not(lwt_model)))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn pre_deposited_token_skips_blocking() {
        let p = Parker::new();
        p.unpark();
        let t0 = Instant::now();
        p.park();
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn unparks_coalesce() {
        let p = Parker::new();
        p.unpark();
        p.unpark();
        p.park();
        // Second park would block: verify via timeout.
        assert!(!p.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn cross_thread_wakeup() {
        let p = Arc::new(Parker::new());
        let p2 = p.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p2.unpark();
        });
        p.park();
        t.join().unwrap();
    }

    #[test]
    fn timeout_expires_without_token() {
        let p = Parker::new();
        let t0 = Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(15)));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn repeated_park_unpark_cycles() {
        let p = Arc::new(Parker::new());
        let p2 = p.clone();
        const ROUNDS: usize = 200;
        let t = std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                p2.park();
            }
        });
        for _ in 0..ROUNDS {
            p.unpark();
            // Give the parker a chance to consume; coalescing means we
            // must not outrun it.
            while p.state.load(Ordering::Relaxed) == NOTIFIED {
                std::thread::yield_now();
            }
        }
        t.join().unwrap();
    }
}
