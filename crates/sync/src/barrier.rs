//! Sense-reversing centralized barrier.
//!
//! This is the join mechanism whose linear cost the paper measures for
//! `gcc` OpenMP and Converse Threads (Fig. 3): every participant
//! decrements a shared counter, the last one flips the *sense* flag, and
//! everyone else spins on the flip. Reversal of the sense between
//! episodes lets the same barrier be reused without re-initialization.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable centralized barrier for a fixed number of participants.
///
/// Waiting participants call [`SenseBarrier::wait`] with a relax
/// strategy — OS threads pass [`crate::thread_yield_relax`]; ULT
/// runtimes pass their own yield so the worker stays busy.
///
/// ```
/// use std::sync::Arc;
/// use lwt_sync::{SenseBarrier, thread_yield_relax};
///
/// let barrier = Arc::new(SenseBarrier::new(2));
/// let b = barrier.clone();
/// let t = std::thread::spawn(move || {
///     b.wait(thread_yield_relax);
/// });
/// barrier.wait(lwt_sync::thread_yield_relax);
/// t.join().unwrap();
/// ```
pub struct SenseBarrier {
    participants: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// Create a barrier for `participants` waiters.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    #[must_use]
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        SenseBarrier {
            participants,
            remaining: AtomicUsize::new(participants),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants per episode.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Block (via `relax`) until all participants have arrived.
    ///
    /// Returns `true` for exactly one participant per episode (the last
    /// arriver — the "serial" participant, mirroring
    /// `std::sync::Barrier`'s leader).
    pub fn wait(&self, mut relax: impl FnMut()) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset the counter, then flip the sense to
            // release everyone. Release ordering publishes the reset.
            self.remaining.store(self.participants, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                relax();
            }
            false
        }
    }
}

impl std::fmt::Debug for SenseBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenseBarrier")
            .field("participants", &self.participants)
            .field("remaining", &self.remaining.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_yield_relax;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait(thread_yield_relax));
        }
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const THREADS: usize = 4;
        const EPISODES: usize = 25;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = barrier.clone();
                let leaders = leaders.clone();
                std::thread::spawn(move || {
                    for _ in 0..EPISODES {
                        if barrier.wait(thread_yield_relax) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), EPISODES);
    }

    #[test]
    fn no_participant_escapes_early() {
        const THREADS: usize = 4;
        const EPISODES: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let phase = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = barrier.clone();
                let phase = phase.clone();
                std::thread::spawn(move || {
                    for episode in 0..EPISODES {
                        phase.fetch_add(1, Ordering::SeqCst);
                        barrier.wait(thread_yield_relax);
                        // After the barrier, *everyone* must have
                        // incremented for this episode.
                        let seen = phase.load(Ordering::SeqCst);
                        assert!(
                            seen >= (episode + 1) * THREADS,
                            "escaped barrier early: saw {seen} at episode {episode}"
                        );
                        barrier.wait(thread_yield_relax);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), THREADS * EPISODES);
    }

    #[test]
    fn debug_shows_state() {
        let b = SenseBarrier::new(3);
        let s = format!("{b:?}");
        assert!(s.contains("participants: 3"));
    }
}
