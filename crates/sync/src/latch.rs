//! Join latches: one-shot events and countdown latches.
//!
//! These model the *status-flag* join family the paper contrasts with
//! barriers: Argobots' `ABT_thread_free` polls the work-unit status
//! word ([`Event`]); joining a whole batch is a countdown
//! ([`CountLatch`]). Both are pure atomics — the waiter chooses how to
//! relax, so ULTs can yield instead of blocking their worker.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A one-shot "it happened" flag.
///
/// ```
/// use lwt_sync::{Event, thread_yield_relax};
/// let e = Event::new();
/// assert!(!e.is_set());
/// e.set();
/// e.wait(thread_yield_relax); // returns immediately
/// ```
#[derive(Debug, Default)]
pub struct Event {
    set: AtomicBool,
}

impl Event {
    /// Create an unset event.
    #[must_use]
    pub fn new() -> Self {
        Event {
            set: AtomicBool::new(false),
        }
    }

    /// Fire the event. Idempotent.
    #[inline]
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
    }

    /// Whether the event has fired.
    #[inline]
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Wait (via `relax`) until the event fires.
    pub fn wait(&self, mut relax: impl FnMut()) {
        if self.is_set() {
            return;
        }
        // Slow path only: register with the stall watchdog so a join
        // stuck on a never-set event lands in the blocked-unit table.
        let _watch = lwt_chaos::block_enter(
            lwt_chaos::BlockKind::Event,
            std::ptr::from_ref(self) as u64,
        );
        while !self.is_set() {
            relax();
        }
    }

    /// Wait until the event fires or `timeout` elapses; `true` iff it
    /// fired. The bounded-join building block: callers that would
    /// otherwise hang on a lost completion degrade to a timeout.
    pub fn wait_timeout(&self, timeout: Duration, mut relax: impl FnMut()) -> bool {
        if self.is_set() {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let _watch = lwt_chaos::block_enter(
            lwt_chaos::BlockKind::Event,
            std::ptr::from_ref(self) as u64,
        );
        loop {
            if self.is_set() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            relax();
        }
    }
}

/// A countdown latch: waiters proceed once `count` decrements reach zero.
///
/// Mirrors the bulk-join shape of the paper's microbenchmarks (one
/// work unit per thread / per task, joined by the master).
///
/// ```
/// use lwt_sync::{CountLatch, thread_yield_relax};
/// let l = CountLatch::new(2);
/// l.count_down();
/// assert!(!l.is_released());
/// l.count_down();
/// l.wait(thread_yield_relax);
/// ```
#[derive(Debug)]
pub struct CountLatch {
    remaining: AtomicUsize,
}

impl CountLatch {
    /// Create a latch expecting `count` countdowns. A zero count is
    /// already released.
    #[must_use]
    pub fn new(count: usize) -> Self {
        CountLatch {
            remaining: AtomicUsize::new(count),
        }
    }

    /// Record one completion. Returns `true` iff this call released the
    /// latch.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on countdown past zero — a lost-join
    /// accounting bug in the caller.
    #[inline]
    pub fn count_down(&self) -> bool {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "CountLatch counted down past zero");
        prev == 1
    }

    /// Add `n` more expected countdowns (for dynamically discovered
    /// work, e.g. nested task spawns). Must not be called after release.
    #[inline]
    pub fn add(&self, n: usize) {
        let prev = self.remaining.fetch_add(n, Ordering::AcqRel);
        debug_assert!(
            prev > 0 || n == 0,
            "CountLatch::add after the latch was released"
        );
    }

    /// Whether the latch has been released.
    #[inline]
    #[must_use]
    pub fn is_released(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Remaining countdowns (racy; diagnostics only).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Wait (via `relax`) until the latch releases.
    pub fn wait(&self, mut relax: impl FnMut()) {
        while !self.is_released() {
            relax();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_yield_relax;
    use std::sync::Arc;

    #[test]
    fn event_fires_once_and_stays() {
        let e = Event::new();
        assert!(!e.is_set());
        e.set();
        e.set();
        assert!(e.is_set());
        e.wait(|| panic!("must not relax on a set event"));
    }

    #[test]
    fn event_publishes_data_across_threads() {
        let e = Arc::new(Event::new());
        let data = Arc::new(AtomicUsize::new(0));
        let (e2, d2) = (e.clone(), data.clone());
        let t = std::thread::spawn(move || {
            d2.store(123, Ordering::Relaxed);
            e2.set();
        });
        e.wait(thread_yield_relax);
        // Release/Acquire on the event orders the data store.
        assert_eq!(data.load(Ordering::Relaxed), 123);
        t.join().unwrap();
    }

    #[test]
    fn event_wait_timeout_bounds_the_wait() {
        let e = Event::new();
        assert!(!e.wait_timeout(Duration::from_millis(20), thread_yield_relax));
        e.set();
        assert!(e.wait_timeout(Duration::from_millis(20), || {
            panic!("must not relax on a set event")
        }));
    }

    #[test]
    fn zero_latch_is_released() {
        let l = CountLatch::new(0);
        assert!(l.is_released());
        l.wait(|| panic!("must not relax"));
    }

    #[test]
    fn exactly_one_releaser() {
        let l = CountLatch::new(5);
        let mut releases = 0;
        for _ in 0..5 {
            if l.count_down() {
                releases += 1;
            }
        }
        assert_eq!(releases, 1);
        assert!(l.is_released());
    }

    #[test]
    fn add_extends_the_latch() {
        let l = CountLatch::new(1);
        l.add(2);
        assert_eq!(l.remaining(), 3);
        l.count_down();
        l.count_down();
        assert!(!l.is_released());
        assert!(l.count_down());
    }

    #[test]
    fn many_threads_count_down() {
        const THREADS: usize = 8;
        const EACH: usize = 1_000;
        let l = Arc::new(CountLatch::new(THREADS * EACH));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..EACH {
                        l.count_down();
                    }
                })
            })
            .collect();
        l.wait(thread_yield_relax);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.remaining(), 0);
    }
}
