//! The generic LWT interface over the five runtime backends.

use std::sync::Arc;

use lwt_sync::{Event, SpinLock};

/// Which runtime model executes the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// `lwt-argobots`: execution streams, private pools, ULTs+tasklets.
    Argobots,
    /// `lwt-qthreads`: shepherds/workers, FEB joins.
    Qthreads,
    /// `lwt-massive`: work-first workers with random stealing.
    MassiveThreads,
    /// `lwt-converse`: processors + messages (work units are messages,
    /// as in the paper's Converse microbenchmarks).
    Converse,
    /// `lwt-go`: global run queue + channel completion.
    Go,
}

impl BackendKind {
    /// All backends, in the paper's Table II column order.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Argobots,
        BackendKind::Qthreads,
        BackendKind::MassiveThreads,
        BackendKind::Converse,
        BackendKind::Go,
    ];

    /// Human-readable backend name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Argobots => "Argobots",
            BackendKind::Qthreads => "Qthreads",
            BackendKind::MassiveThreads => "MassiveThreads",
            BackendKind::Converse => "Converse Threads",
            BackendKind::Go => "Go",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

enum Backend {
    Argobots(lwt_argobots::Runtime),
    Qthreads(lwt_qthreads::Runtime),
    Massive(lwt_massive::Runtime),
    Converse(lwt_converse::Runtime),
    Go(lwt_go::Runtime),
}

/// Completion slot for backends without native typed handles
/// (Converse messages, goroutines).
struct EventSlot<T> {
    done: Event,
    value: SpinLock<Option<T>>,
    panicked: SpinLock<Option<Box<dyn std::any::Any + Send>>>,
}

impl<T> EventSlot<T> {
    fn new() -> Arc<Self> {
        Arc::new(EventSlot {
            done: Event::new(),
            value: SpinLock::new(None),
            panicked: SpinLock::new(None),
        })
    }

    fn fulfill(&self, out: std::thread::Result<T>) {
        match out {
            Ok(v) => *self.value.lock() = Some(v),
            Err(p) => *self.panicked.lock() = Some(p),
        }
        self.done.set();
    }

    fn wait(&self, relax: impl FnMut()) -> T {
        self.done.wait(relax);
        if let Some(p) = self.panicked.lock().take() {
            std::panic::resume_unwind(p);
        }
        self.value.lock().take().expect("GLT result missing")
    }
}

/// Join handle returned by [`Glt::ult_create`] / [`Glt::tasklet_create`].
/// Opaque: the variant (and thus the join mechanism) is the backend's
/// business.
pub struct GltHandle<T> {
    inner: HandleInner<T>,
}

enum HandleInner<T> {
    /// Argobots ULT handle (status-word join).
    AbtUlt(lwt_argobots::UltHandle<T>),
    /// Argobots tasklet handle.
    AbtTasklet(lwt_argobots::TaskletHandle<T>),
    /// Qthreads handle (FEB join).
    Qth(lwt_qthreads::Handle<T>),
    /// MassiveThreads handle.
    Myth(lwt_massive::Handle<T>),
    /// Event-backed completion (Converse messages, goroutines).
    Event(Arc<EventSlot<T>>, BackendKind),
}

impl<T> From<HandleInner<T>> for GltHandle<T> {
    fn from(inner: HandleInner<T>) -> Self {
        GltHandle { inner }
    }
}

impl<T> GltHandle<T> {
    /// Wait for completion and take the result (the backend's native
    /// join mechanism underneath).
    ///
    /// # Panics
    ///
    /// Re-raises a panic that escaped the work unit.
    pub fn join(self) -> T {
        match self.inner {
            HandleInner::AbtUlt(h) => h.join(),
            HandleInner::AbtTasklet(h) => h.join(),
            HandleInner::Qth(h) => h.join(),
            HandleInner::Myth(h) => h.join(),
            HandleInner::Event(slot, kind) => slot.wait(relax_for(kind)),
        }
    }

    /// Non-consuming completion test.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            HandleInner::AbtUlt(h) => h.is_finished(),
            HandleInner::AbtTasklet(h) => h.is_finished(),
            HandleInner::Qth(h) => h.is_finished(),
            HandleInner::Myth(h) => h.is_finished(),
            HandleInner::Event(slot, _) => slot.done.is_set(),
        }
    }
}

impl<T> std::fmt::Debug for GltHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GltHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// The relax used while waiting on event-backed joins: yield the ULT
/// when waiting from inside one, else yield the OS thread.
fn relax_for(kind: BackendKind) -> impl FnMut() {
    let mut escalate = lwt_sync::AdaptiveRelax::new();
    move || {
        match kind {
            BackendKind::Converse if lwt_converse::in_ult() => lwt_converse::yield_now(),
            BackendKind::Go if lwt_ultcore_in_ult() => lwt_go_yield(),
            _ => {}
        }
        escalate.relax();
    }
}

// Go deliberately exposes no yield; the GLT join still must not wedge a
// scheduler thread when called from inside a goroutine, so we reach for
// the (crate-internal) implicit reschedule the Go runtime itself uses
// in channel operations.
fn lwt_ultcore_in_ult() -> bool {
    lwt_ultcore::in_ult()
}
fn lwt_go_yield() {
    lwt_ultcore::yield_now();
}

/// The unified runtime (`GLT_init` … `GLT_finalize`).
pub struct Glt {
    backend: Backend,
}

impl Glt {
    /// Initialize the chosen backend with `threads` execution resources
    /// (streams / shepherds / workers / processors / scheduler threads).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn init(kind: BackendKind, threads: usize) -> Self {
        let backend = match kind {
            BackendKind::Argobots => Backend::Argobots(lwt_argobots::Runtime::init(
                lwt_argobots::Config {
                    num_streams: threads,
                    ..Default::default()
                },
            )),
            BackendKind::Qthreads => Backend::Qthreads(lwt_qthreads::Runtime::init(
                lwt_qthreads::Config {
                    num_shepherds: threads,
                    workers_per_shepherd: 1,
                    ..Default::default()
                },
            )),
            BackendKind::MassiveThreads => Backend::Massive(lwt_massive::Runtime::init(
                lwt_massive::Config {
                    num_workers: threads,
                    ..Default::default()
                },
            )),
            BackendKind::Converse => Backend::Converse(lwt_converse::Runtime::init(
                lwt_converse::Config {
                    num_processors: threads,
                },
            )),
            BackendKind::Go => Backend::Go(lwt_go::Runtime::init(lwt_go::Config {
                num_threads: threads,
            })),
        };
        Glt { backend }
    }

    /// Which backend this instance drives.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match &self.backend {
            Backend::Argobots(_) => BackendKind::Argobots,
            Backend::Qthreads(_) => BackendKind::Qthreads,
            Backend::Massive(_) => BackendKind::MassiveThreads,
            Backend::Converse(_) => BackendKind::Converse,
            Backend::Go(_) => BackendKind::Go,
        }
    }

    /// Create a yieldable work unit (`*_creation_function` in the
    /// paper's Listing 4).
    ///
    /// Converse note: external callers cannot create ULTs in other
    /// processors' queues (the paper's insertion rule), so the Converse
    /// backend dispatches a *message*, exactly as the paper's own
    /// Converse microbenchmarks do.
    pub fn ult_create<T, F>(&self, f: F) -> GltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match &self.backend {
            Backend::Argobots(rt) => HandleInner::AbtUlt(rt.ult_create(f)).into(),
            Backend::Qthreads(rt) => HandleInner::Qth(rt.fork_rr(f)).into(),
            Backend::Massive(rt) => HandleInner::Myth(rt.spawn(f)).into(),
            Backend::Converse(rt) => {
                let slot = EventSlot::new();
                let s2 = slot.clone();
                rt.send_rr(move || {
                    s2.fulfill(std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(f),
                    ));
                });
                HandleInner::Event(slot, BackendKind::Converse).into()
            }
            Backend::Go(rt) => {
                let slot = EventSlot::new();
                let s2 = slot.clone();
                rt.go(move || {
                    s2.fulfill(std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(f),
                    ));
                });
                HandleInner::Event(slot, BackendKind::Go).into()
            }
        }
    }

    /// Create a stackless, atomically-executed work unit where the
    /// backend has one (Argobots tasklets, Converse messages); falls
    /// back to [`Glt::ult_create`] elsewhere — the degradation path the
    /// common-API design implies.
    pub fn tasklet_create<T, F>(&self, f: F) -> GltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match &self.backend {
            Backend::Argobots(rt) => HandleInner::AbtTasklet(rt.tasklet_create(f)).into(),
            Backend::Converse(_) => self.ult_create(f), // already a message
            _ => self.ult_create(f),
        }
    }

    /// Whether the backend distinguishes tasklets from ULTs (paper
    /// Table I, "Tasklet Support").
    #[must_use]
    pub fn supports_tasklets(&self) -> bool {
        matches!(
            self.backend,
            Backend::Argobots(_) | Backend::Converse(_)
        )
    }

    /// Yield the calling work unit (`yield_function`). A no-op on the
    /// Go backend — the paper's Table I marks Go as offering no yield.
    pub fn yield_now(&self) {
        match &self.backend {
            Backend::Argobots(_) => {
                if lwt_argobots::in_ult() {
                    lwt_argobots::yield_now();
                }
            }
            Backend::Qthreads(_) | Backend::Massive(_) | Backend::Converse(_) => {
                if lwt_ultcore::in_ult() {
                    lwt_ultcore::yield_now();
                }
            }
            Backend::Go(_) => {}
        }
    }

    /// Shut the backend down (`finalize_function`).
    pub fn finalize(self) {
        match self.backend {
            Backend::Argobots(rt) => rt.shutdown(),
            Backend::Qthreads(rt) => rt.shutdown(),
            Backend::Massive(rt) => rt.shutdown(),
            Backend::Converse(rt) => {
                rt.barrier();
                rt.shutdown();
            }
            Backend::Go(rt) => rt.shutdown(),
        }
    }
}

impl std::fmt::Debug for Glt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Glt").field("backend", &self.kind()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_backend_runs_ults() {
        for kind in BackendKind::ALL {
            let glt = Glt::init(kind, 2);
            let hits = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..50)
                .map(|_| {
                    let h = hits.clone();
                    glt.ult_create(move || {
                        h.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(hits.load(Ordering::Relaxed), 50, "backend {kind}");
            glt.finalize();
        }
    }

    #[test]
    fn every_backend_returns_values() {
        for kind in BackendKind::ALL {
            let glt = Glt::init(kind, 2);
            let sum: u64 = (0..20)
                .map(|i| glt.ult_create(move || i as u64))
                .collect::<Vec<_>>()
                .into_iter()
                .map(GltHandle::join)
                .sum();
            assert_eq!(sum, 190, "backend {kind}");
            glt.finalize();
        }
    }

    #[test]
    fn tasklets_run_everywhere_with_fallback() {
        for kind in BackendKind::ALL {
            let glt = Glt::init(kind, 2);
            let h = glt.tasklet_create(|| 3u32.pow(3));
            assert_eq!(h.join(), 27, "backend {kind}");
            glt.finalize();
        }
    }

    #[test]
    fn tasklet_support_matches_table_one() {
        for (kind, expect) in [
            (BackendKind::Argobots, true),
            (BackendKind::Qthreads, false),
            (BackendKind::MassiveThreads, false),
            (BackendKind::Converse, true),
            (BackendKind::Go, false),
        ] {
            let glt = Glt::init(kind, 1);
            assert_eq!(glt.supports_tasklets(), expect, "backend {kind}");
            glt.finalize();
        }
    }

    #[test]
    fn panics_propagate_through_the_generic_join() {
        for kind in BackendKind::ALL {
            let glt = Glt::init(kind, 1);
            let h = glt.ult_create(|| -> () { panic!("glt boom") });
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()))
                .expect_err("join must re-raise");
            assert_eq!(
                err.downcast_ref::<&str>(),
                Some(&"glt boom"),
                "backend {kind}"
            );
            glt.finalize();
        }
    }

    #[test]
    fn listing4_pseudocode_shape_works() {
        // The paper's Listing 4: init → create N → yield → join N →
        // finalize, expressed 1:1 in the generic API.
        const N: usize = 100;
        for kind in BackendKind::ALL {
            let glt = Glt::init(kind, 2);
            let handles: Vec<_> = (0..N).map(|_| glt.ult_create(|| ())).collect();
            glt.yield_now();
            for h in handles {
                h.join();
            }
            glt.finalize();
        }
    }
}
