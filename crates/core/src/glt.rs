//! The generic LWT interface over the five runtime backends.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lwt_fiber::StackSize;
use lwt_sched::{force_wait_policy, WaitPolicy};
use lwt_sync::{Event, SpinLock};
use lwt_ultcore::task::{TaskCell, TaskOutcome, TaskResched};
use lwt_ultcore::{blocking, DrainError, JoinError};

use crate::error::{PlacementError, SpawnError};

/// Which runtime model executes the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// `lwt-argobots`: execution streams, private pools, ULTs+tasklets.
    Argobots,
    /// `lwt-qthreads`: shepherds/workers, FEB joins.
    Qthreads,
    /// `lwt-massive`: work-first workers with random stealing.
    MassiveThreads,
    /// `lwt-converse`: processors + messages (work units are messages,
    /// as in the paper's Converse microbenchmarks).
    Converse,
    /// `lwt-go`: global run queue + channel completion.
    Go,
}

impl BackendKind {
    /// All backends, in the paper's Table II column order.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Argobots,
        BackendKind::Qthreads,
        BackendKind::MassiveThreads,
        BackendKind::Converse,
        BackendKind::Go,
    ];

    /// Human-readable backend name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Argobots => "Argobots",
            BackendKind::Qthreads => "Qthreads",
            BackendKind::MassiveThreads => "MassiveThreads",
            BackendKind::Converse => "Converse Threads",
            BackendKind::Go => "Go",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scheduler/pool topology knob of the unified API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Each execution resource owns a private ready queue; cross-worker
    /// traffic goes through the lock-free injector. Every backend's
    /// default, and the configuration the paper's evaluation selects.
    #[default]
    PrivatePerWorker,
    /// One shared, mutex-protected queue. Only Argobots exposes this
    /// topology (`ABT_POOL_ACCESS_MPMC` ≙ `PoolPolicy::SharedSingle`);
    /// the other backends have no shared-queue mode and ignore the
    /// knob, keeping their private queues.
    SharedQueue,
}

/// Full configuration consumed by [`Glt::with_config`]; normally
/// assembled through [`Glt::builder`].
///
/// ```
/// use lwt_core::{BackendKind, Glt, GltConfig, SchedPolicy};
///
/// let mut cfg = GltConfig::new(BackendKind::Argobots);
/// cfg.workers = 2;
/// cfg.scheduler = SchedPolicy::SharedQueue; // ABT_POOL_ACCESS_MPMC
/// let glt = Glt::with_config(cfg);
/// assert_eq!(glt.workers(), 2);
/// glt.finalize().expect("clean drain");
/// ```
#[derive(Debug, Clone)]
pub struct GltConfig {
    /// Which runtime model executes the work.
    pub backend: BackendKind,
    /// Number of execution resources (streams / shepherds / workers /
    /// processors / scheduler threads). Must be non-zero.
    pub workers: usize,
    /// Stack size for stackful work units.
    pub stack_size: StackSize,
    /// Per-worker stack-cache capacity override. `None` keeps the
    /// process-wide setting (`LWT_STACK_CACHE_CAP`, default 64);
    /// `Some(0)` disables recycling. Note the cache is process-global,
    /// so this override outlives the [`Glt`] instance that set it.
    pub stack_cache_capacity: Option<usize>,
    /// Ready-queue topology (see [`SchedPolicy`]).
    pub scheduler: SchedPolicy,
    /// How long [`Glt::finalize`] waits for in-flight work to drain
    /// before abandoning wedged workers and reporting a
    /// [`DrainError`]. Generous by default (30 s) so healthy workloads
    /// never see it; shrink it in tests that provoke hangs.
    pub drain_timeout: Duration,
    /// Idle-worker wait policy override (mirrors `OMP_WAIT_POLICY`).
    /// `None` keeps the process-wide setting, which itself defaults to
    /// `LWT_WAIT_POLICY` (adaptive when unset). Note the policy is
    /// process-global, so an override outlives the [`Glt`] instance
    /// that set it.
    pub wait_policy: Option<WaitPolicy>,
    /// Growth ceiling override for the [`Glt::spawn_blocking`]
    /// OS-thread pool. `None` keeps the process-wide setting
    /// (`LWT_BLOCKING_THREADS`, default 8); `Some(0)` disables the
    /// pool. Like the stack cache and wait policy, the pool is
    /// process-global, so an override outlives the [`Glt`] instance
    /// that set it.
    pub blocking_threads: Option<usize>,
    /// Queue placement for [`Glt::spawn_async`] tasks (initial
    /// schedule and waker-driven reschedules alike).
    pub async_queue: AsyncQueuePolicy,
}

impl GltConfig {
    /// Defaults for `backend`: workers per [`default_workers`]
    /// (`LWT_WORKERS`, else machine topology), default stacks,
    /// inherited stack-cache capacity, private per-worker queues,
    /// inherited wait policy.
    #[must_use]
    pub fn new(backend: BackendKind) -> Self {
        GltConfig {
            backend,
            workers: default_workers(),
            stack_size: StackSize::DEFAULT,
            stack_cache_capacity: None,
            scheduler: SchedPolicy::default(),
            drain_timeout: Duration::from_secs(30),
            wait_policy: None,
            blocking_threads: None,
            async_queue: AsyncQueuePolicy::default(),
        }
    }
}

/// The worker count new configs start from: `LWT_WORKERS=N` forces `N`
/// execution resources, while `LWT_WORKERS=auto` — or the variable
/// unset, empty, zero, or unparsable — sizes the pool from the machine
/// topology (`available_parallelism`), the analogue of
/// `OMP_NUM_THREADS` defaulting to the core count.
#[must_use]
pub fn default_workers() -> usize {
    workers_from(std::env::var("LWT_WORKERS").ok().as_deref())
}

fn workers_from(spec: Option<&str>) -> usize {
    let auto = || std::thread::available_parallelism().map_or(4, usize::from);
    match spec.map(str::trim) {
        None | Some("") => auto(),
        Some(s) if s.eq_ignore_ascii_case("auto") => auto(),
        Some(s) => s.parse().ok().filter(|&n| n > 0).unwrap_or_else(auto),
    }
}

/// Builder returned by [`Glt::builder`]; every setter is optional.
///
/// ```
/// use lwt_core::{BackendKind, Glt};
///
/// let glt = Glt::builder(BackendKind::Qthreads).workers(2).build();
/// let h = glt.ult_create(|| 6 * 7);
/// assert_eq!(h.join(), 42);
/// glt.finalize().expect("clean drain");
/// ```
#[derive(Debug, Clone)]
pub struct GltBuilder {
    cfg: GltConfig,
}

impl GltBuilder {
    /// Number of execution resources (streams / shepherds / workers /
    /// processors / scheduler threads).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Stack size for stackful work units.
    #[must_use]
    pub fn stack_size(mut self, size: StackSize) -> Self {
        self.cfg.stack_size = size;
        self
    }

    /// Per-worker stack-cache capacity (see
    /// [`GltConfig::stack_cache_capacity`]).
    #[must_use]
    pub fn stack_cache_capacity(mut self, cap: usize) -> Self {
        self.cfg.stack_cache_capacity = Some(cap);
        self
    }

    /// Ready-queue topology.
    #[must_use]
    pub fn scheduler(mut self, policy: SchedPolicy) -> Self {
        self.cfg.scheduler = policy;
        self
    }

    /// Drain deadline for [`Glt::finalize`] (see
    /// [`GltConfig::drain_timeout`]).
    #[must_use]
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.drain_timeout = timeout;
        self
    }

    /// Idle-worker wait policy (see [`GltConfig::wait_policy`]).
    #[must_use]
    pub fn wait_policy(mut self, policy: WaitPolicy) -> Self {
        self.cfg.wait_policy = Some(policy);
        self
    }

    /// Growth ceiling for the [`Glt::spawn_blocking`] OS-thread pool
    /// (see [`GltConfig::blocking_threads`]); `0` disables it.
    #[must_use]
    pub fn blocking_threads(mut self, max: usize) -> Self {
        self.cfg.blocking_threads = Some(max);
        self
    }

    /// Queue placement for [`Glt::spawn_async`] tasks (see
    /// [`AsyncQueuePolicy`]).
    #[must_use]
    pub fn async_queue(mut self, policy: AsyncQueuePolicy) -> Self {
        self.cfg.async_queue = policy;
        self
    }

    /// The accumulated configuration, without starting a runtime.
    #[must_use]
    pub fn config(&self) -> &GltConfig {
        &self.cfg
    }

    /// Start the runtime.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn build(self) -> Glt {
        Glt::with_config(self.cfg)
    }
}

/// Where [`Glt::spawn_async`] tasks are queued, both for the initial
/// schedule and for every waker-driven reschedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AsyncQueuePolicy {
    /// Spread polls over the execution resources: the caller's own
    /// queue when spawned or woken from a worker, round-robin dispatch
    /// otherwise — the same placement the backend's `ult_create` uses.
    #[default]
    RoundRobin,
    /// Pin every poll to one execution resource. Useful when the
    /// future touches worker-local state or to keep a latency-critical
    /// task out of the steal traffic. Validated against the worker
    /// count at [`GltBuilder::build`] time.
    Pinned(usize),
}

#[derive(Clone)]
enum Backend {
    Argobots(lwt_argobots::Runtime),
    Qthreads(lwt_qthreads::Runtime),
    Massive(lwt_massive::Runtime),
    Converse(lwt_converse::Runtime),
    Go(lwt_go::Runtime),
}

/// Completion slot for backends without native typed handles
/// (Converse messages, goroutines).
struct EventSlot<T> {
    done: Event,
    value: SpinLock<Option<T>>,
    panicked: SpinLock<Option<Box<dyn std::any::Any + Send>>>,
    /// Causal span of the work unit (0 when tracing was off at spawn);
    /// carried here so joins through event-backed handles record the
    /// same join edge the native handles do.
    span: u64,
}

impl<T> EventSlot<T> {
    fn new(span: u64) -> Arc<Self> {
        Arc::new(EventSlot {
            done: Event::new(),
            value: SpinLock::new(None),
            panicked: SpinLock::new(None),
            span,
        })
    }

    fn fulfill(&self, out: std::thread::Result<T>) {
        match out {
            Ok(v) => *self.value.lock() = Some(v),
            Err(p) => *self.panicked.lock() = Some(p),
        }
        self.done.set();
    }

    fn try_wait(&self, relax: impl FnMut()) -> Result<T, JoinError> {
        self.done.wait(relax);
        lwt_metrics::span::on_join(self.span);
        if let Some(p) = self.panicked.lock().take() {
            return Err(JoinError::new(p));
        }
        Ok(self.value.lock().take().expect("GLT result missing"))
    }
}

/// Run `f` with `span` current on the executing thread, completing the
/// span afterwards — the execution-side half of the causal trace for
/// work units that travel as bare closures (Converse messages, blocking
/// jobs) instead of span-carrying ULT structures.
fn run_spanned<T>(span: u64, f: impl FnOnce() -> T) -> T {
    if span != 0 {
        lwt_metrics::span::set_current(span);
    }
    let out = f();
    lwt_metrics::span::on_complete(span);
    if span != 0 {
        lwt_metrics::span::set_current(lwt_metrics::span::NO_SPAN);
    }
    out
}

/// Join handle returned by [`Glt::ult_create`] / [`Glt::tasklet_create`].
/// Opaque: the variant (and thus the join mechanism) is the backend's
/// business.
pub struct GltHandle<T> {
    inner: HandleInner<T>,
}

enum HandleInner<T> {
    /// Argobots ULT handle (status-word join).
    AbtUlt(lwt_argobots::UltHandle<T>),
    /// Argobots tasklet handle.
    AbtTasklet(lwt_argobots::TaskletHandle<T>),
    /// Qthreads handle (FEB join).
    Qth(lwt_qthreads::Handle<T>),
    /// MassiveThreads handle.
    Myth(lwt_massive::Handle<T>),
    /// Event-backed completion (Converse messages, goroutines,
    /// blocking-pool jobs).
    Event(Arc<EventSlot<T>>, BackendKind),
    /// Stackless future spawned with [`Glt::spawn_async`]; completion
    /// is the task cell's own done event.
    Async(Arc<dyn TaskOutcome<T>>, BackendKind),
}

impl<T> From<HandleInner<T>> for GltHandle<T> {
    fn from(inner: HandleInner<T>) -> Self {
        GltHandle { inner }
    }
}

impl<T> GltHandle<T> {
    /// Wait for completion (the backend's native join mechanism
    /// underneath) and take the result, surfacing a panic that escaped
    /// the work unit as a [`JoinError`] instead of re-raising it.
    ///
    /// ```
    /// use lwt_core::{BackendKind, Glt};
    ///
    /// let glt = Glt::builder(BackendKind::Argobots).workers(1).build();
    /// assert_eq!(glt.ult_create(|| 6 * 7).try_join().unwrap(), 42);
    /// // A panic inside the work unit comes back as a JoinError
    /// // instead of tearing down the joiner:
    /// let boom = glt.ult_create(|| -> u32 { panic!("unit failed") });
    /// assert!(boom.try_join().is_err());
    /// glt.finalize().expect("clean drain");
    /// ```
    ///
    /// # Errors
    ///
    /// [`JoinError`] carrying the panic payload.
    pub fn try_join(self) -> Result<T, JoinError> {
        match self.inner {
            HandleInner::AbtUlt(h) => h.try_join(),
            HandleInner::AbtTasklet(h) => h.try_join(),
            HandleInner::Qth(h) => h.try_join(),
            HandleInner::Myth(h) => h.try_join(),
            HandleInner::Event(slot, kind) => slot.try_wait(relax_for(kind)),
            HandleInner::Async(outcome, kind) => {
                outcome.done().wait(relax_for(kind));
                lwt_metrics::span::on_join(outcome.span_id());
                match outcome.take().expect("async result already taken") {
                    Ok(v) => Ok(v),
                    Err(p) => Err(JoinError::new(p)),
                }
            }
        }
    }

    /// Wait for completion and take the result.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that escaped the work unit.
    pub fn join(self) -> T {
        self.try_join().unwrap_or_else(|e| e.resume())
    }

    /// Non-consuming completion test.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            HandleInner::AbtUlt(h) => h.is_finished(),
            HandleInner::AbtTasklet(h) => h.is_finished(),
            HandleInner::Qth(h) => h.is_finished(),
            HandleInner::Myth(h) => h.is_finished(),
            HandleInner::Event(slot, _) => slot.done.is_set(),
            HandleInner::Async(outcome, _) => outcome.done().is_set(),
        }
    }

    /// Bounded join: wait at most `timeout` for completion, yielding
    /// cooperatively when called from inside a work unit.
    ///
    /// ```
    /// use std::time::Duration;
    /// use lwt_core::{BackendKind, Glt};
    ///
    /// let glt = Glt::builder(BackendKind::Qthreads).workers(1).build();
    /// let h = glt.ult_create(|| 7);
    /// let out = match h.join_timeout(Duration::from_secs(5)) {
    ///     Ok(joined) => joined.expect("no panic"),
    ///     Err(_handle) => panic!("trivial unit should finish in 5s"),
    /// };
    /// assert_eq!(out, 7);
    /// glt.finalize().expect("clean drain");
    /// ```
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` — the still-usable handle — when the unit
    /// had not completed within `timeout`, so the caller can retry,
    /// keep polling [`GltHandle::is_finished`], or drop it.
    pub fn join_timeout(self, timeout: Duration) -> Result<Result<T, JoinError>, Self> {
        let until = Instant::now() + timeout;
        let mut relax = lwt_sync::AdaptiveRelax::new();
        loop {
            if self.is_finished() {
                return Ok(self.try_join());
            }
            if Instant::now() >= until {
                return Err(self);
            }
            match &self.inner {
                HandleInner::AbtUlt(_)
                | HandleInner::AbtTasklet(_)
                | HandleInner::Async(_, BackendKind::Argobots)
                | HandleInner::Event(_, BackendKind::Argobots) => {
                    if lwt_argobots::in_ult() {
                        lwt_argobots::yield_now();
                    }
                }
                _ => {
                    if lwt_ultcore::in_ult() {
                        lwt_ultcore::yield_now();
                    }
                }
            }
            relax.relax();
        }
    }
}

impl<T> std::fmt::Debug for GltHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GltHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// The relax used while waiting on event-backed and async joins: yield
/// the ULT when waiting from inside one, else yield the OS thread. Go
/// deliberately exposes no yield, but a GLT join still must not wedge a
/// scheduler thread when called from inside a goroutine, so the
/// fallback arm reaches for the shared-core reschedule the ultcore
/// backends (Qthreads/MassiveThreads/Converse/Go) all use; Argobots
/// keeps its own fiber layer and needs its own yield.
fn relax_for(kind: BackendKind) -> impl FnMut() {
    let mut escalate = lwt_sync::AdaptiveRelax::new();
    move || {
        match kind {
            BackendKind::Argobots if lwt_argobots::in_ult() => lwt_argobots::yield_now(),
            BackendKind::Converse if lwt_converse::in_ult() => lwt_converse::yield_now(),
            _ if lwt_ultcore::in_ult() => lwt_ultcore::yield_now(),
            _ => {}
        }
        escalate.relax();
    }
}

/// Yield the currently-running work unit back to its scheduler,
/// whichever backend it belongs to, and report whether the caller was
/// inside one. From an ordinary OS thread this is a no-op returning
/// `false`.
///
/// This is the backend-agnostic building block for libraries layered
/// *above* the GLT API (the `lwt-net` reactor's readiness waits) that
/// must spin politely without knowing which runtime is hosting them:
/// each backend's ULT context is thread-local, so probing all of them
/// finds the right one regardless of which `Glt` spawned the caller.
pub fn yield_unit() -> bool {
    if lwt_argobots::in_ult() {
        lwt_argobots::yield_now();
        true
    } else if lwt_converse::in_ult() {
        lwt_converse::yield_now();
        true
    } else if lwt_ultcore::in_ult() {
        lwt_ultcore::yield_now();
        true
    } else {
        false
    }
}

/// The unified runtime (`GLT_init` … `GLT_finalize`).
///
/// Cloning is cheap — every backend runtime is an `Arc`-shared handle
/// — and clones refer to the *same* pool of workers, so layered
/// subsystems (the `lwt-net` HTTP server's acceptor, long-lived
/// services) can hold their own spawn capability. Exactly one clone
/// should call [`Glt::finalize`], after the others are done spawning.
#[derive(Clone)]
pub struct Glt {
    backend: Backend,
    workers: usize,
    drain_timeout: Duration,
    async_queue: AsyncQueuePolicy,
}

impl Glt {
    /// Start configuring a runtime for `kind`. Finish with
    /// [`GltBuilder::build`].
    #[must_use]
    pub fn builder(kind: BackendKind) -> GltBuilder {
        GltBuilder {
            cfg: GltConfig::new(kind),
        }
    }

    /// Initialize a backend from a fully-spelled-out [`GltConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero.
    #[must_use]
    pub fn with_config(cfg: GltConfig) -> Self {
        assert!(cfg.workers > 0, "GLT needs at least one execution resource");
        if let AsyncQueuePolicy::Pinned(w) = cfg.async_queue {
            assert!(
                w < cfg.workers,
                "async_queue pinned to worker {w} but the runtime has {} workers",
                cfg.workers
            );
        }
        if let Some(cap) = cfg.stack_cache_capacity {
            lwt_fiber::cache::set_capacity(cap);
        }
        if let Some(max) = cfg.blocking_threads {
            blocking::set_max_threads(max);
        }
        if let Some(policy) = cfg.wait_policy {
            // Before backend init, so workers idle under the requested
            // policy from their very first empty pick.
            force_wait_policy(policy);
        }
        let backend = match cfg.backend {
            BackendKind::Argobots => Backend::Argobots(lwt_argobots::Runtime::init(
                lwt_argobots::Config {
                    num_streams: cfg.workers,
                    pool_policy: match cfg.scheduler {
                        SchedPolicy::PrivatePerWorker => {
                            lwt_argobots::PoolPolicy::PrivatePerStream
                        }
                        SchedPolicy::SharedQueue => lwt_argobots::PoolPolicy::SharedSingle,
                    },
                    stack_size: cfg.stack_size,
                },
            )),
            BackendKind::Qthreads => Backend::Qthreads(lwt_qthreads::Runtime::init(
                // One worker per shepherd: GLT worker index ≙ shepherd
                // index, which is what fork_to targets.
                lwt_qthreads::Config {
                    num_shepherds: cfg.workers,
                    workers_per_shepherd: 1,
                    stack_size: cfg.stack_size,
                },
            )),
            BackendKind::MassiveThreads => Backend::Massive(lwt_massive::Runtime::init(
                lwt_massive::Config {
                    num_workers: cfg.workers,
                    stack_size: cfg.stack_size,
                    ..Default::default()
                },
            )),
            BackendKind::Converse => Backend::Converse(lwt_converse::Runtime::init(
                lwt_converse::Config {
                    num_processors: cfg.workers,
                    stack_size: cfg.stack_size,
                },
            )),
            BackendKind::Go => Backend::Go(lwt_go::Runtime::init(lwt_go::Config {
                num_threads: cfg.workers,
                stack_size: cfg.stack_size,
            })),
        };
        Glt {
            backend,
            workers: cfg.workers,
            drain_timeout: cfg.drain_timeout,
            async_queue: cfg.async_queue,
        }
    }

    /// Number of execution resources this runtime was started with.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Which backend this instance drives.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match &self.backend {
            Backend::Argobots(_) => BackendKind::Argobots,
            Backend::Qthreads(_) => BackendKind::Qthreads,
            Backend::Massive(_) => BackendKind::MassiveThreads,
            Backend::Converse(_) => BackendKind::Converse,
            Backend::Go(_) => BackendKind::Go,
        }
    }

    /// Create a yieldable work unit (`*_creation_function` in the
    /// paper's Listing 4).
    ///
    /// Converse note: external callers cannot create ULTs in other
    /// processors' queues (the paper's insertion rule), so the Converse
    /// backend dispatches a *message*, exactly as the paper's own
    /// Converse microbenchmarks do.
    pub fn ult_create<T, F>(&self, f: F) -> GltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match &self.backend {
            Backend::Argobots(rt) => HandleInner::AbtUlt(rt.ult_create(f)).into(),
            Backend::Qthreads(rt) => HandleInner::Qth(rt.fork_rr(f)).into(),
            Backend::Massive(rt) => HandleInner::Myth(rt.spawn(f)).into(),
            Backend::Converse(rt) => {
                // A GLT ULT is yieldable by contract (Table II maps it
                // to CthCreate), but Converse's insertion rule says only
                // messages may enter another processor's queue. So the
                // spawn is two-stage: a message — legal from any thread
                // — lands on a processor and performs the CthCreate
                // there; the ULT body fulfills the handle. The spawn
                // edge is recorded here (where the causal parent is
                // current) and the ULT *adopts* that span, so the unit
                // traces exactly like the native-handle backends.
                let span = lwt_metrics::span::on_spawn();
                let slot = EventSlot::new(span);
                let s2 = slot.clone();
                let rt2 = rt.clone();
                rt.send_rr(move || {
                    let _detached = rt2.spawn_ult_spanned(span, move || {
                        s2.fulfill(std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)));
                    });
                });
                HandleInner::Event(slot, BackendKind::Converse).into()
            }
            Backend::Go(rt) => {
                // Goroutines run inside a span-carrying UltCore, so the
                // closure inherits a span natively; the slot records no
                // second one (0 = let the ULT's span own the trace).
                let slot = EventSlot::new(0);
                let s2 = slot.clone();
                rt.go(move || {
                    s2.fulfill(std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(f),
                    ));
                });
                HandleInner::Event(slot, BackendKind::Go).into()
            }
        }
    }

    /// Create a yieldable work unit pinned to execution resource
    /// `worker` — Argobots ES-targeted creation (`ABT_thread_create` on
    /// a specific stream's pool), Qthreads `qthread_fork_to` and a
    /// Converse destination-processor send.
    ///
    /// ```
    /// use lwt_core::{BackendKind, Glt, PlacementError};
    ///
    /// let glt = Glt::builder(BackendKind::Qthreads).workers(2).build();
    /// // qthread_fork_to: pin the unit to shepherd 1.
    /// let pinned = glt.ult_create_to(1, || 7).expect("worker 1 exists");
    /// assert_eq!(pinned.join(), 7);
    /// // Out-of-range placement is rejected up front, not wrapped.
    /// assert!(matches!(
    ///     glt.ult_create_to(9, || 0),
    ///     Err(PlacementError::OutOfRange { .. })
    /// ));
    /// glt.finalize().expect("clean drain");
    /// ```
    ///
    /// # Errors
    ///
    /// [`PlacementError::Unsupported`] on MassiveThreads (the
    /// work-first scheduler owns placement) and Go (processors are
    /// hidden); [`PlacementError::OutOfRange`] when `worker` ≥
    /// [`Glt::workers`].
    pub fn ult_create_to<T, F>(&self, worker: usize, f: F) -> Result<GltHandle<T>, PlacementError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match &self.backend {
            Backend::Massive(_) => {
                return Err(PlacementError::Unsupported(BackendKind::MassiveThreads))
            }
            Backend::Go(_) => return Err(PlacementError::Unsupported(BackendKind::Go)),
            _ => {}
        }
        if worker >= self.workers {
            return Err(PlacementError::OutOfRange {
                worker,
                workers: self.workers,
            });
        }
        Ok(match &self.backend {
            Backend::Argobots(rt) => HandleInner::AbtUlt(rt.ult_create_to(worker, f)).into(),
            Backend::Qthreads(rt) => HandleInner::Qth(rt.fork_to(worker, f)).into(),
            Backend::Converse(rt) => {
                // Two-stage spawn adopting the call-site span, like
                // ult_create (see the notes there); the CthCreate runs
                // on the destination processor, so the ULT stays pinned
                // to `worker`.
                let span = lwt_metrics::span::on_spawn();
                let slot = EventSlot::new(span);
                let s2 = slot.clone();
                let rt2 = rt.clone();
                rt.send(worker, move || {
                    let _detached = rt2.spawn_ult_spanned(span, move || {
                        s2.fulfill(std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)));
                    });
                });
                HandleInner::Event(slot, BackendKind::Converse).into()
            }
            Backend::Massive(_) | Backend::Go(_) => unreachable!("rejected above"),
        })
    }

    /// Create a stackless, atomically-executed work unit where the
    /// backend has one (Argobots tasklets, Converse messages); falls
    /// back to [`Glt::ult_create`] elsewhere — the degradation path the
    /// common-API design implies.
    pub fn tasklet_create<T, F>(&self, f: F) -> GltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match &self.backend {
            Backend::Argobots(rt) => HandleInner::AbtTasklet(rt.tasklet_create(f)).into(),
            Backend::Converse(rt) => {
                // A Converse message IS the tasklet: stackless and
                // atomically executed on the processor's own stack.
                // (ult_create takes the two-stage CthCreate path for
                // yieldability; tasklets must not yield, so the direct
                // send is the faithful mapping.)
                let span = lwt_metrics::span::on_spawn();
                let slot = EventSlot::new(span);
                let s2 = slot.clone();
                rt.send_rr(move || {
                    s2.fulfill(run_spanned(span, || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
                    }));
                });
                HandleInner::Event(slot, BackendKind::Converse).into()
            }
            _ => self.ult_create(f),
        }
    }

    /// The reschedule hook encoding this runtime's [`AsyncQueuePolicy`]:
    /// the initial enqueue and every waker-driven requeue go through it,
    /// so placement is decided in exactly one place.
    fn task_resched(&self) -> TaskResched {
        match (&self.backend, self.async_queue) {
            (Backend::Argobots(rt), AsyncQueuePolicy::RoundRobin) => rt.task_poster(),
            (Backend::Argobots(rt), AsyncQueuePolicy::Pinned(w)) => rt.task_poster_to(w),
            (Backend::Qthreads(rt), AsyncQueuePolicy::RoundRobin) => rt.task_poster(),
            (Backend::Qthreads(rt), AsyncQueuePolicy::Pinned(w)) => rt.task_poster_to(w),
            (Backend::Massive(rt), AsyncQueuePolicy::RoundRobin) => rt.task_poster(),
            (Backend::Massive(rt), AsyncQueuePolicy::Pinned(w)) => rt.task_poster_to(w),
            (Backend::Converse(rt), AsyncQueuePolicy::RoundRobin) => rt.task_poster(),
            (Backend::Converse(rt), AsyncQueuePolicy::Pinned(w)) => rt.task_poster_to(w),
            (Backend::Go(rt), AsyncQueuePolicy::RoundRobin) => rt.task_poster(),
            (Backend::Go(rt), AsyncQueuePolicy::Pinned(w)) => rt.task_poster_to(w),
        }
    }

    /// Spawn a stackless `Future` onto the backend's ready queues — the
    /// third execution model next to stackful ULTs and run-to-completion
    /// tasklets.
    ///
    /// Each poll runs atomically on a scheduler worker (like a tasklet);
    /// `Pending` parks the task *without* a stack, and the waker the
    /// future captured re-enqueues it through the backend's own dispatch
    /// path, so woken polls mix with ULTs and tasklets in the same
    /// queues. The handle joins like any other GLT handle; a panic
    /// inside `poll` surfaces at [`GltHandle::try_join`] as a
    /// [`JoinError`].
    ///
    /// ```
    /// use lwt_core::{BackendKind, Glt};
    ///
    /// let glt = Glt::builder(BackendKind::Qthreads).workers(2).build();
    /// let h = glt.spawn_async(async { 6 * 7 });
    /// assert_eq!(h.join(), 42);
    /// glt.finalize().expect("clean drain");
    /// ```
    pub fn spawn_async<F>(&self, fut: F) -> GltHandle<F::Output>
    where
        F: std::future::Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let resched = self.task_resched();
        let (outcome, task) = TaskCell::spawn(fut, resched.clone());
        // The task is born SCHEDULED; this push is its first schedule.
        resched(task);
        HandleInner::Async(outcome, self.kind()).into()
    }

    /// Run `f` on an OS thread that is *allowed* to block (file I/O,
    /// syscalls, long-running FFI) instead of wedging a scheduler
    /// worker — the jobs go to a process-global, lazily-grown thread
    /// pool capped by [`GltBuilder::blocking_threads`] /
    /// `LWT_BLOCKING_THREADS`. Completion sets the handle's event, so
    /// joiners (including ULTs and `spawn_async` futures waiting via
    /// [`GltHandle::join_timeout`] polling) wake like any other
    /// event-backed join.
    ///
    /// ```
    /// use lwt_core::{BackendKind, Glt};
    ///
    /// let glt = Glt::builder(BackendKind::Go).workers(1).build();
    /// let h = glt.spawn_blocking(|| {
    ///     std::thread::sleep(std::time::Duration::from_millis(1));
    ///     "done off-worker"
    /// });
    /// assert_eq!(h.join(), "done off-worker");
    /// glt.finalize().expect("clean drain");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the pool rejects the job (disabled by a zero
    /// ceiling, or the OS refused the first thread); use
    /// [`Glt::try_spawn_blocking`] to handle that as an error.
    pub fn spawn_blocking<T, F>(&self, f: F) -> GltHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.try_spawn_blocking(f)
            .unwrap_or_else(|e| panic!("spawn_blocking failed: {e}"))
    }

    /// Fallible [`Glt::spawn_blocking`].
    ///
    /// # Errors
    ///
    /// [`SpawnError::BlockingPool`] when the pool is disabled
    /// (`blocking_threads(0)` / `LWT_BLOCKING_THREADS=0`) or had no
    /// thread and could not start one; the closure is returned to the
    /// caller unrun in the sense that no handle exists for it.
    pub fn try_spawn_blocking<T, F>(&self, f: F) -> Result<GltHandle<T>, SpawnError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        // Blocking jobs travel as bare closures like Converse messages,
        // so the span rides in the payload the same way.
        let span = lwt_metrics::span::on_spawn();
        let slot = EventSlot::new(span);
        let s2 = slot.clone();
        blocking::submit(move || {
            s2.fulfill(run_spanned(span, || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            }));
        })?;
        Ok(HandleInner::Event(slot, self.kind()).into())
    }

    /// Whether the backend distinguishes tasklets from ULTs (paper
    /// Table I, "Tasklet Support").
    #[must_use]
    pub fn supports_tasklets(&self) -> bool {
        matches!(
            self.backend,
            Backend::Argobots(_) | Backend::Converse(_)
        )
    }

    /// Yield the calling work unit (`yield_function`). A no-op on the
    /// Go backend — the paper's Table I marks Go as offering no yield.
    pub fn yield_now(&self) {
        match &self.backend {
            Backend::Argobots(_) => {
                if lwt_argobots::in_ult() {
                    lwt_argobots::yield_now();
                }
            }
            Backend::Qthreads(_) | Backend::Massive(_) | Backend::Converse(_) => {
                if lwt_ultcore::in_ult() {
                    lwt_ultcore::yield_now();
                }
            }
            Backend::Go(_) => {}
        }
    }

    /// Shut the backend down (`finalize_function`), waiting at most
    /// [`GltConfig::drain_timeout`] for in-flight work to drain. Past
    /// the deadline the backend's workers are told to abandon their
    /// queues (wedged ones are detached — never killed) and the
    /// leftovers come back as a [`DrainError`] straggler table instead
    /// of the historical hang.
    ///
    /// Converse note: its return-mode join needs global quiescence
    /// before the exit barrier, so the deadline bounds *each* of the
    /// quiescence wait and the processor join (worst case ~2×).
    ///
    /// # Errors
    ///
    /// [`DrainError`] when work was still pending at the deadline.
    pub fn finalize(self) -> Result<(), DrainError> {
        let deadline = self.drain_timeout;
        let result = match self.backend {
            Backend::Argobots(rt) => rt.shutdown_within(deadline),
            Backend::Qthreads(rt) => rt.shutdown_within(deadline),
            Backend::Massive(rt) => rt.shutdown_within(deadline),
            Backend::Converse(rt) => {
                // Entering the barrier while a unit is wedged would
                // hang the master: the barrier requires quiescence.
                if rt.quiesce_within(deadline) {
                    rt.barrier();
                }
                rt.shutdown_within(deadline)
            }
            Backend::Go(rt) => rt.shutdown_within(deadline),
        };
        if result.is_err() {
            // Post-mortem bundle for the straggler table (armed by
            // LWT_FLIGHTREC; a no-op otherwise).
            lwt_chaos::register_flightrec_sections();
            let _ = lwt_metrics::flightrec::dump("drain_error");
        }
        result
    }
}

impl std::fmt::Debug for Glt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Glt").field("backend", &self.kind()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn worker_spec_parses_numbers_and_auto() {
        let topo = std::thread::available_parallelism().map_or(4, usize::from);
        assert_eq!(workers_from(Some("3")), 3);
        assert_eq!(workers_from(Some(" 16 ")), 16);
        for auto in [None, Some("auto"), Some("AUTO"), Some(""), Some("0"), Some("cores")] {
            assert_eq!(workers_from(auto), topo, "spec {auto:?}");
        }
    }

    #[test]
    fn builder_wait_policy_reaches_the_global_knob() {
        let glt = Glt::builder(BackendKind::Go)
            .workers(1)
            .wait_policy(WaitPolicy::Passive)
            .build();
        assert_eq!(lwt_sched::current_wait_policy(), WaitPolicy::Passive);
        glt.finalize().expect("clean drain");
        lwt_sched::reset_wait_policy_to_env();
    }

    #[test]
    fn every_backend_runs_ults() {
        for kind in BackendKind::ALL {
            let glt = Glt::builder(kind).workers(2).build();
            let hits = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..50)
                .map(|_| {
                    let h = hits.clone();
                    glt.ult_create(move || {
                        h.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(hits.load(Ordering::Relaxed), 50, "backend {kind}");
            glt.finalize().expect("clean drain");
        }
    }

    #[test]
    fn every_backend_returns_values() {
        for kind in BackendKind::ALL {
            let glt = Glt::builder(kind).workers(2).build();
            let sum: u64 = (0..20)
                .map(|i| glt.ult_create(move || i as u64))
                .collect::<Vec<_>>()
                .into_iter()
                .map(GltHandle::join)
                .sum();
            assert_eq!(sum, 190, "backend {kind}");
            glt.finalize().expect("clean drain");
        }
    }

    #[test]
    fn tasklets_run_everywhere_with_fallback() {
        for kind in BackendKind::ALL {
            let glt = Glt::builder(kind).workers(2).build();
            let h = glt.tasklet_create(|| 3u32.pow(3));
            assert_eq!(h.join(), 27, "backend {kind}");
            glt.finalize().expect("clean drain");
        }
    }

    #[test]
    fn tasklet_support_matches_table_one() {
        for (kind, expect) in [
            (BackendKind::Argobots, true),
            (BackendKind::Qthreads, false),
            (BackendKind::MassiveThreads, false),
            (BackendKind::Converse, true),
            (BackendKind::Go, false),
        ] {
            let glt = Glt::builder(kind).workers(1).build();
            assert_eq!(glt.supports_tasklets(), expect, "backend {kind}");
            glt.finalize().expect("clean drain");
        }
    }

    #[test]
    fn panics_propagate_through_the_generic_join() {
        for kind in BackendKind::ALL {
            let glt = Glt::builder(kind).workers(1).build();
            let h = glt.ult_create(|| -> () { panic!("glt boom") });
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()))
                .expect_err("join must re-raise");
            assert_eq!(
                err.downcast_ref::<&str>(),
                Some(&"glt boom"),
                "backend {kind}"
            );
            glt.finalize().expect("clean drain");
        }
    }

    #[test]
    fn listing4_pseudocode_shape_works() {
        // The paper's Listing 4: init → create N → yield → join N →
        // finalize, expressed 1:1 in the generic API.
        const N: usize = 100;
        for kind in BackendKind::ALL {
            let glt = Glt::builder(kind).workers(2).build();
            let handles: Vec<_> = (0..N).map(|_| glt.ult_create(|| ())).collect();
            glt.yield_now();
            for h in handles {
                h.join();
            }
            glt.finalize().expect("clean drain");
        }
    }
}
