//! The unified error surface of the GLT layer.
//!
//! Every fallible operation of [`crate::Glt`] reports through one of
//! the types collected here, all with consistent [`std::fmt::Display`]
//! and [`std::error::Error::source`] implementations so callers can
//! `?`-propagate into `Box<dyn Error>` without per-backend special
//! cases. The join/drain types are defined in `lwt-ultcore` (the
//! backends share them natively) and re-exported; the spawn-side types
//! live here.

use crate::glt::BackendKind;

/// Panic payload surfaced by the fallible joins ([`crate::GltHandle::try_join`]
/// and every backend handle's `try_join`) — one type across all five
/// runtimes.
///
/// ```
/// use lwt_core::{error::JoinError, BackendKind, Glt};
///
/// let glt = Glt::builder(BackendKind::Go).workers(1).build();
/// let boom = glt.ult_create(|| -> u32 { panic!("unit failed") });
/// let err: JoinError = boom.try_join().unwrap_err();
/// assert!(err.to_string().contains("panicked"));
/// glt.finalize().expect("clean drain");
/// ```
pub use lwt_ultcore::JoinError;

/// Bounded-drain failure from [`crate::Glt::finalize`] (and every
/// backend's `shutdown_within`): the deadline expired with work still
/// pending, and the straggler table says where.
///
/// ```
/// use std::time::Duration;
/// use lwt_core::error::{DrainError, Straggler};
///
/// let err = DrainError {
///     waited: Duration::from_millis(50),
///     stragglers: vec![Straggler { worker: 1, pending: 3, what: "ready queue" }],
/// };
/// assert!(err.to_string().contains("worker 1"));
/// assert!(std::error::Error::source(&err).is_none());
/// ```
pub use lwt_ultcore::DrainError;

/// One row of a [`DrainError`] straggler table.
pub use lwt_ultcore::Straggler;

/// The `spawn_blocking` OS-thread pool could not accept a job (see
/// [`crate::Glt::try_spawn_blocking`]).
///
/// ```
/// use lwt_core::error::BlockingPoolError;
///
/// assert!(BlockingPoolError::Disabled.to_string().contains("disabled"));
/// assert!(std::error::Error::source(&BlockingPoolError::SpawnFailed).is_none());
/// ```
pub use lwt_ultcore::BlockingPoolError;

/// Error from placement-aware creation ([`crate::Glt::ult_create_to`]).
///
/// ```
/// use lwt_core::{error::PlacementError, BackendKind, Glt};
///
/// let glt = Glt::builder(BackendKind::Go).workers(1).build();
/// // Go hides its processors: placement is rejected up front.
/// let err = glt.ult_create_to(0, || ()).unwrap_err();
/// assert!(matches!(err, PlacementError::Unsupported(BackendKind::Go)));
/// assert!(err.to_string().contains("placement"));
/// glt.finalize().expect("clean drain");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The backend exposes no work-unit placement: MassiveThreads
    /// decides placement with its work-first scheduler, and Go hides
    /// its processors entirely (paper Table I, "Scheduling Control").
    Unsupported(BackendKind),
    /// `worker` is not a valid execution-resource index.
    OutOfRange {
        /// Requested worker index.
        worker: usize,
        /// Number of execution resources in this runtime.
        workers: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Unsupported(kind) => {
                write!(f, "backend {kind} does not support work-unit placement")
            }
            PlacementError::OutOfRange { worker, workers } => {
                write!(f, "worker {worker} out of range (runtime has {workers})")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// A spawn-side operation could not hand its work unit to the runtime.
///
/// Unifies the placement and blocking-pool failure modes behind one
/// type so generic spawn wrappers have a single error to propagate;
/// the underlying cause is preserved through
/// [`std::error::Error::source`].
///
/// ```
/// use lwt_core::error::{BlockingPoolError, SpawnError};
///
/// let err = SpawnError::from(BlockingPoolError::Disabled);
/// assert!(err.to_string().contains("blocking pool"));
/// // The concrete cause stays reachable through source():
/// let src = std::error::Error::source(&err).expect("has a cause");
/// assert!(src.downcast_ref::<BlockingPoolError>().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnError {
    /// The requested placement was invalid or unsupported.
    Placement(PlacementError),
    /// The `spawn_blocking` pool rejected the job.
    BlockingPool(BlockingPoolError),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Placement(e) => write!(f, "spawn failed: {e}"),
            SpawnError::BlockingPool(e) => write!(f, "spawn failed: {e}"),
        }
    }
}

impl std::error::Error for SpawnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpawnError::Placement(e) => Some(e),
            SpawnError::BlockingPool(e) => Some(e),
        }
    }
}

impl From<PlacementError> for SpawnError {
    fn from(e: PlacementError) -> Self {
        SpawnError::Placement(e)
    }
}

impl From<BlockingPoolError> for SpawnError {
    fn from(e: BlockingPoolError) -> Self {
        SpawnError::BlockingPool(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_error_display_and_source_round_trip() {
        let p = SpawnError::from(PlacementError::OutOfRange {
            worker: 7,
            workers: 2,
        });
        assert!(p.to_string().contains("worker 7"));
        assert!(std::error::Error::source(&p)
            .unwrap()
            .downcast_ref::<PlacementError>()
            .is_some());
        let b = SpawnError::from(BlockingPoolError::SpawnFailed);
        assert!(b.to_string().contains("OS thread"));
    }
}
