//! A directive-style high-level programming model over the unified
//! API — the paper's proposed end state: "This API could be placed
//! under several high-level PMs, such as OpenMP or OmpSs, that are
//! currently implemented on top of Pthreads or custom ULT solutions"
//! (§X).
//!
//! [`Pm`] offers the OpenMP-shaped operations (`parallel_for`,
//! `parallel_reduce`, task scopes) implemented purely in terms of
//! [`crate::Glt`]'s reduced function set, so the same high-level code
//! runs unchanged over Argobots, Qthreads, MassiveThreads, Converse
//! Threads, or the Go model — inheriting each backend's performance
//! personality, exactly what the paper's follow-up (GLTO) measured.

use std::ops::Range;
use std::sync::Arc;

use crate::glt::{BackendKind, Glt, GltHandle};

/// The directive-style layer over a [`Glt`] instance.
///
/// ```
/// use lwt_core::{BackendKind, Pm};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pm = Pm::init(BackendKind::Qthreads, 2);
/// let sum = Arc::new(AtomicUsize::new(0));
/// let s = sum.clone();
/// pm.parallel_for(0..100, 8, move |i| {
///     s.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 4950);
/// pm.finalize().expect("clean drain");
/// ```
pub struct Pm {
    glt: Glt,
    default_grain: usize,
}

impl Pm {
    /// Initialize over `kind` with `threads` execution resources.
    #[must_use]
    pub fn init(kind: BackendKind, threads: usize) -> Self {
        Pm {
            glt: Glt::builder(kind).workers(threads).build(),
            default_grain: 64,
        }
    }

    /// Wrap an existing [`Glt`] instance.
    #[must_use]
    pub fn over(glt: Glt) -> Self {
        Pm {
            glt,
            default_grain: 64,
        }
    }

    /// The backend underneath.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        self.glt.kind()
    }

    /// Borrow the underlying generic API.
    #[must_use]
    pub fn glt(&self) -> &Glt {
        &self.glt
    }

    /// `#pragma omp parallel for`: execute `f` for every index, one
    /// work unit per `grain` indices (grain 0 = the default of 64).
    pub fn parallel_for<F>(&self, range: Range<usize>, grain: usize, f: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let grain = if grain == 0 { self.default_grain } else { grain };
        let f = Arc::new(f);
        let mut handles = Vec::new();
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + grain).min(range.end);
            let f = f.clone();
            handles.push(self.glt.ult_create(move || {
                for i in lo..hi {
                    f(i);
                }
            }));
            lo = hi;
        }
        for h in handles {
            h.join();
        }
    }

    /// `#pragma omp parallel for reduction(...)`: map every index,
    /// fold with `reduce` (`identity` must be neutral).
    pub fn parallel_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        grain: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send + Clone + 'static,
        M: Fn(usize) -> T + Send + Sync + 'static,
        R: Fn(T, T) -> T + Send + Sync + 'static,
    {
        let grain = if grain == 0 { self.default_grain } else { grain };
        let map = Arc::new(map);
        let reduce = Arc::new(reduce);
        let mut handles: Vec<GltHandle<T>> = Vec::new();
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + grain).min(range.end);
            let map = map.clone();
            let red = reduce.clone();
            let id = identity.clone();
            handles.push(self.glt.ult_create(move || {
                let mut acc = id;
                for i in lo..hi {
                    acc = red(acc, map(i));
                }
                acc
            }));
            lo = hi;
        }
        let mut acc = identity;
        for h in handles {
            acc = reduce(acc, h.join());
        }
        acc
    }

    /// A task scope (`#pragma omp taskgroup`): tasks created through
    /// the [`TaskScope`] are all joined before `scope` returns.
    pub fn scope<R>(&self, body: impl FnOnce(&TaskScope<'_>) -> R) -> R {
        let scope = TaskScope {
            pm: self,
            handles: lwt_sync::SpinLock::new(Vec::new()),
        };
        let out = body(&scope);
        for h in scope.handles.into_inner() {
            h.join();
        }
        out
    }

    /// Cooperative yield (`#pragma omp taskyield`); no-op where the
    /// backend offers none (Go).
    pub fn yield_now(&self) {
        self.glt.yield_now();
    }

    /// Shut the backend down, waiting at most the underlying
    /// [`GltConfig::drain_timeout`](crate::GltConfig::drain_timeout)
    /// for in-flight work.
    ///
    /// # Errors
    ///
    /// [`DrainError`](crate::DrainError) when work was still pending at
    /// the deadline (see [`Glt::finalize`]).
    pub fn finalize(self) -> Result<(), lwt_ultcore::DrainError> {
        self.glt.finalize()
    }
}

impl std::fmt::Debug for Pm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pm").field("backend", &self.kind()).finish()
    }
}

/// Task creation surface inside [`Pm::scope`].
pub struct TaskScope<'a> {
    pm: &'a Pm,
    handles: lwt_sync::SpinLock<Vec<GltHandle<()>>>,
}

impl TaskScope<'_> {
    /// `#pragma omp task`: runs concurrently; joined at scope exit.
    pub fn task<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.handles.lock().push(self.pm.glt.ult_create(f));
    }

    /// A stackless task where the backend supports one (tasklet), else
    /// a ULT.
    pub fn tasklet<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.handles.lock().push(self.pm.glt.tasklet_create(f));
    }
}

impl std::fmt::Debug for TaskScope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskScope")
            .field("pending", &self.handles.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_once_on_every_backend() {
        for kind in BackendKind::ALL {
            let pm = Pm::init(kind, 2);
            let hits: Arc<Vec<AtomicUsize>> =
                Arc::new((0..300).map(|_| AtomicUsize::new(0)).collect());
            let h = hits.clone();
            pm.parallel_for(0..300, 32, move |i| {
                h[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "backend {kind}"
            );
            pm.finalize().expect("clean drain");
        }
    }

    #[test]
    fn parallel_reduce_on_every_backend() {
        for kind in BackendKind::ALL {
            let pm = Pm::init(kind, 2);
            let total = pm.parallel_reduce(1..501usize, 50, 0usize, |i| i, |a, b| a + b);
            assert_eq!(total, 500 * 501 / 2 - 0, "backend {kind}");
            pm.finalize().expect("clean drain");
        }
    }

    #[test]
    fn reduce_empty_range_is_identity() {
        let pm = Pm::init(BackendKind::Argobots, 1);
        assert_eq!(pm.parallel_reduce(3..3, 0, 42usize, |i| i, |a, b| a + b), 42);
        pm.finalize().expect("clean drain");
    }

    #[test]
    fn scope_joins_all_tasks() {
        for kind in BackendKind::ALL {
            let pm = Pm::init(kind, 2);
            let count = Arc::new(AtomicUsize::new(0));
            let c2 = count.clone();
            let out = pm.scope(|s| {
                for _ in 0..20 {
                    let c = c2.clone();
                    s.task(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
                for _ in 0..20 {
                    let c = c2.clone();
                    s.tasklet(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
                "scope-result"
            });
            assert_eq!(out, "scope-result");
            // All 40 joined by scope exit.
            assert_eq!(count.load(Ordering::Relaxed), 40, "backend {kind}");
            pm.finalize().expect("clean drain");
        }
    }

    #[test]
    fn default_grain_applies() {
        let pm = Pm::init(BackendKind::Go, 1);
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        pm.parallel_for(0..10, 0, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
        pm.finalize().expect("clean drain");
    }
}
