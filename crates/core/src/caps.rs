//! Programmatic encodings of the paper's Table I (semantic feature
//! matrix) and Table II (function mapping).

/// How a library lets users plug scheduling policy (Table I,
/// "Plug-in Scheduler").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPlug {
    /// No user control over scheduling.
    No,
    /// Fully pluggable scheduler instances.
    Yes,
    /// Choice among compiled-in policies only — the paper marks
    /// MassiveThreads "✓(configure)".
    ConfigureTime,
}

/// One row of the paper's Table I: the execution/scheduling features of
/// a threading library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    /// Library name as the paper spells it.
    pub name: &'static str,
    /// "Levels of Hierarchy".
    pub levels_of_hierarchy: u8,
    /// "# of Work Unit Types".
    pub work_unit_types: u8,
    /// "Thread Support" (stackful ULTs).
    pub thread_support: bool,
    /// "Tasklet Support" (stackless units).
    pub tasklet_support: bool,
    /// "Group Control" (user chooses the number of execution
    /// resources).
    pub group_control: bool,
    /// "Yield To" (direct ULT→ULT transfer).
    pub yield_to: bool,
    /// "Global Work Unit Queue".
    pub global_queue: bool,
    /// "Private Work Unit Queue".
    pub private_queue: bool,
    /// "Plug-in Scheduler".
    pub plugin_scheduler: SchedulerPlug,
    /// "Stackable Scheduler".
    pub stackable_scheduler: bool,
    /// "Group Scheduler" (scheduler shared by a group of resources).
    pub group_scheduler: bool,
}

/// The paper's Table I, row for row (Pthreads included for reference).
///
/// Guarded by tests in this crate *and* exercised by
/// `lwt-microbench`'s `table1_semantics` binary, which re-derives the
/// dynamic columns from the live runtimes.
#[must_use]
pub fn capability_matrix() -> Vec<Capabilities> {
    vec![
        Capabilities {
            name: "Pthreads",
            levels_of_hierarchy: 1,
            work_unit_types: 1,
            thread_support: true,
            tasklet_support: false,
            group_control: false,
            yield_to: false,
            global_queue: true,
            private_queue: false,
            plugin_scheduler: SchedulerPlug::Yes,
            stackable_scheduler: false,
            group_scheduler: false,
        },
        Capabilities {
            name: "Argobots",
            levels_of_hierarchy: 2,
            work_unit_types: 2,
            thread_support: true,
            tasklet_support: true,
            group_control: true,
            yield_to: true,
            global_queue: true,
            private_queue: true,
            plugin_scheduler: SchedulerPlug::Yes,
            stackable_scheduler: true,
            group_scheduler: true,
        },
        Capabilities {
            name: "Qthreads",
            levels_of_hierarchy: 3,
            work_unit_types: 1,
            thread_support: true,
            tasklet_support: false,
            group_control: true,
            yield_to: false,
            global_queue: false,
            private_queue: true,
            plugin_scheduler: SchedulerPlug::No,
            stackable_scheduler: false,
            group_scheduler: false,
        },
        Capabilities {
            name: "MassiveThreads",
            levels_of_hierarchy: 2,
            work_unit_types: 1,
            thread_support: true,
            tasklet_support: false,
            group_control: true,
            yield_to: false,
            global_queue: false,
            private_queue: true,
            plugin_scheduler: SchedulerPlug::ConfigureTime,
            stackable_scheduler: false,
            group_scheduler: false,
        },
        Capabilities {
            name: "Converse Threads",
            levels_of_hierarchy: 2,
            work_unit_types: 2,
            thread_support: true,
            tasklet_support: true,
            group_control: true,
            yield_to: false,
            global_queue: false,
            private_queue: true,
            plugin_scheduler: SchedulerPlug::Yes,
            stackable_scheduler: false,
            group_scheduler: false,
        },
        Capabilities {
            name: "Go",
            levels_of_hierarchy: 2,
            work_unit_types: 1,
            thread_support: true,
            tasklet_support: false,
            group_control: true,
            yield_to: false,
            global_queue: true,
            private_queue: false,
            plugin_scheduler: SchedulerPlug::No,
            stackable_scheduler: false,
            group_scheduler: false,
        },
    ]
}

/// One row of the paper's Table II: a generic operation and its
/// spelling in each library (`None` = not offered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiRow {
    /// Generic operation name.
    pub operation: &'static str,
    /// Spelling per library, in Table II column order:
    /// Argobots, Qthreads, MassiveThreads, Converse Threads, Go.
    pub spellings: [Option<&'static str>; 5],
}

/// The paper's Table II: "the most used functions in microbenchmark
/// implementations using LWT".
#[must_use]
pub fn api_map() -> Vec<ApiRow> {
    vec![
        ApiRow {
            operation: "Initialization",
            spellings: [
                Some("ABT_init"),
                Some("qthread_initialize"),
                Some("myth_init"),
                Some("ConverseInit"),
                None,
            ],
        },
        ApiRow {
            operation: "ULT creation",
            spellings: [
                Some("ABT_thread_create"),
                Some("qthread_fork"),
                Some("myth_create"),
                Some("CthCreate"),
                Some("go function"),
            ],
        },
        ApiRow {
            operation: "Tasklet creation",
            spellings: [Some("ABT_task_create"), None, None, Some("CmiSyncSend"), None],
        },
        ApiRow {
            operation: "Yield",
            spellings: [
                Some("ABT_thread_yield"),
                Some("qthread_yield"),
                Some("myth_yield"),
                Some("CthYield"),
                None,
            ],
        },
        ApiRow {
            operation: "Join",
            spellings: [
                Some("ABT_thread_free"),
                Some("qthread_readFF"),
                Some("myth_join"),
                None,
                Some("channel"),
            ],
        },
        ApiRow {
            operation: "Finalization",
            spellings: [
                Some("ABT_finalize"),
                Some("qthread_finalize"),
                Some("myth_fini"),
                Some("ConverseExit"),
                None,
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_table_one() {
        let m = capability_matrix();
        assert_eq!(m.len(), 6);
        let by_name = |n: &str| m.iter().find(|c| c.name == n).unwrap();

        // Levels of Hierarchy row: 1 2 3 2 2 2.
        assert_eq!(by_name("Pthreads").levels_of_hierarchy, 1);
        assert_eq!(by_name("Argobots").levels_of_hierarchy, 2);
        assert_eq!(by_name("Qthreads").levels_of_hierarchy, 3);
        assert_eq!(by_name("MassiveThreads").levels_of_hierarchy, 2);
        assert_eq!(by_name("Converse Threads").levels_of_hierarchy, 2);
        assert_eq!(by_name("Go").levels_of_hierarchy, 2);

        // Work unit types row: 1 2 1 1 2 1.
        let types: Vec<u8> = m.iter().map(|c| c.work_unit_types).collect();
        assert_eq!(types, vec![1, 2, 1, 1, 2, 1]);

        // Tasklet support: only Argobots and Converse.
        let tasklets: Vec<&str> = m
            .iter()
            .filter(|c| c.tasklet_support)
            .map(|c| c.name)
            .collect();
        assert_eq!(tasklets, vec!["Argobots", "Converse Threads"]);

        // Yield To: Argobots only.
        let yield_to: Vec<&str> =
            m.iter().filter(|c| c.yield_to).map(|c| c.name).collect();
        assert_eq!(yield_to, vec!["Argobots"]);

        // Stackable/group scheduler: Argobots only.
        assert!(m
            .iter()
            .all(|c| (c.name == "Argobots") == c.stackable_scheduler));
        assert!(m
            .iter()
            .all(|c| (c.name == "Argobots") == c.group_scheduler));

        // Group control: everyone but Pthreads.
        assert!(m.iter().all(|c| (c.name != "Pthreads") == c.group_control));

        // Global queue: Pthreads, Argobots, Go.
        let global: Vec<&str> = m
            .iter()
            .filter(|c| c.global_queue)
            .map(|c| c.name)
            .collect();
        assert_eq!(global, vec!["Pthreads", "Argobots", "Go"]);

        // Private queue: everyone but Pthreads and Go.
        let private: Vec<&str> = m
            .iter()
            .filter(|c| c.private_queue)
            .map(|c| c.name)
            .collect();
        assert_eq!(
            private,
            vec!["Argobots", "Qthreads", "MassiveThreads", "Converse Threads"]
        );

        // Consistency: every library with 2 work unit types supports
        // tasklets, and vice versa.
        for c in &m {
            assert_eq!(c.work_unit_types == 2, c.tasklet_support, "{}", c.name);
            assert!(c.thread_support, "{}", c.name);
        }
    }

    #[test]
    fn api_map_matches_paper_table_two() {
        let rows = api_map();
        assert_eq!(rows.len(), 6);
        let by_op = |o: &str| rows.iter().find(|r| r.operation == o).unwrap();

        // Go has neither init, yield nor finalize in Table II.
        assert_eq!(by_op("Initialization").spellings[4], None);
        assert_eq!(by_op("Yield").spellings[4], None);
        assert_eq!(by_op("Finalization").spellings[4], None);
        // Joins: Converse has none (messages/barrier), Go uses channels.
        assert_eq!(by_op("Join").spellings[3], None);
        assert_eq!(by_op("Join").spellings[4], Some("channel"));
        // Tasklets exist only for Argobots and Converse.
        let t = by_op("Tasklet creation");
        assert!(t.spellings[0].is_some() && t.spellings[3].is_some());
        assert!(t.spellings[1].is_none() && t.spellings[2].is_none() && t.spellings[4].is_none());
    }

    #[test]
    fn matrix_agrees_with_live_runtimes() {
        use crate::{BackendKind, Glt};
        let m = capability_matrix();
        for kind in BackendKind::ALL {
            let row = m.iter().find(|c| c.name == kind.name()).unwrap();
            let glt = Glt::builder(kind).workers(1).build();
            assert_eq!(
                glt.supports_tasklets(),
                row.tasklet_support,
                "backend {kind}"
            );
            glt.finalize().expect("clean drain");
        }
    }
}
