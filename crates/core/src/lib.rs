//! # lwt-core — the unified lightweight-thread API
//!
//! The reproduced paper closes by proposing its actual contribution
//! for future work: "we plan to design and implement a **common API**
//! for the LWT libraries. This API could be placed under several
//! high-level PMs … that are currently implemented on top of Pthreads"
//! (§X) — the work that later became the authors' GLT library. This
//! crate *is* that common API, realized over the five runtime models
//! implemented in this workspace.
//!
//! The API surface is exactly the **reduced function set of the
//! paper's Table II**, which the authors postulate "can be sufficient
//! to cover the common parallel code patterns":
//!
//! | Generic ([`Glt`]) | Argobots | Qthreads | MassiveThreads | Converse | Go |
//! |---|---|---|---|---|---|
//! | `init` | `ABT_init` | `qthread_initialize` | `myth_init` | `ConverseInit` | — |
//! | `ult_create` | `ABT_thread_create` | `qthread_fork` | `myth_create` | `CthCreate` | `go func` |
//! | `tasklet_create` | `ABT_task_create` | — | — | `CmiSyncSend` | — |
//! | `yield` | `ABT_thread_yield` | `qthread_yield` | `myth_yield` | `CthYield` | — |
//! | `join` | `ABT_thread_free` | `qthread_readFF` | `myth_join` | message/barrier | channel |
//! | `finalize` | `ABT_finalize` | `qthread_finalize` | `myth_fini` | `ConverseExit` | — |
//!
//! Each backend keeps its native join/creation semantics underneath
//! (status-word polling, full/empty bits, work-first displacement,
//! message sends, channel receives), so code written against [`Glt`]
//! inherits the performance personality of whichever backend it runs
//! on — the property the paper's microbenchmarks quantify.
//!
//! The semantic feature matrix of the paper's **Table I** is exposed
//! programmatically via [`capability_matrix`], and the Table II
//! function mapping via [`api_map`].
//!
//! ## Example
//!
//! ```
//! use lwt_core::{BackendKind, Glt};
//!
//! for kind in BackendKind::ALL {
//!     let glt = Glt::builder(kind).workers(2).build();
//!     let h: Vec<_> = (0..4).map(|i| glt.ult_create(move || i * i)).collect();
//!     let sum: usize = h.into_iter().map(|h| h.join()).sum();
//!     assert_eq!(sum, 14);
//!     glt.finalize().expect("clean drain");
//! }
//! ```

#![warn(missing_docs)]

mod caps;
pub mod error;
mod glt;
mod pm;

pub use caps::{
    api_map, capability_matrix, ApiRow, Capabilities, SchedulerPlug,
};
pub use error::{BlockingPoolError, PlacementError, SpawnError};
pub use glt::{
    default_workers, yield_unit, AsyncQueuePolicy, BackendKind, Glt, GltBuilder, GltConfig,
    GltHandle, SchedPolicy,
};
pub use pm::{Pm, TaskScope};

/// Stack size for stackful work units, re-exported from `lwt-fiber` so
/// `GltBuilder::stack_size` can be fed without a second dependency.
pub use lwt_fiber::StackSize;
/// Idle-worker wait policy (`LWT_WAIT_POLICY`, the analogue of
/// `OMP_WAIT_POLICY`) plus its process-wide accessors, re-exported from
/// `lwt-sched` so `GltBuilder::wait_policy` can be fed without a second
/// dependency.
pub use lwt_sched::{
    current_wait_policy, force_wait_policy, reset_wait_policy_to_env, WaitPolicy,
};
/// Panic payload surfaced by the fallible joins (`GltHandle::try_join`
/// and every backend handle's `try_join`) — one type across all five
/// runtimes. Canonical home: [`error`].
pub use lwt_ultcore::JoinError;
/// Bounded-drain failure from [`Glt::finalize`] (and every backend's
/// `shutdown_within`): the deadline expired with work still pending,
/// and the straggler table says where. Canonical home: [`error`].
pub use lwt_ultcore::{DrainError, Straggler};

/// Deterministic PRNGs (`SplitMix64`, `Xoshiro256StarStar`) with a
/// `rand`-like `gen_range`/`shuffle` surface.
///
/// The implementation lives in `lwt-chaos` — the dependency-free
/// substrate crate (it also seeds the fault-injection schedule) — and
/// is re-exported through `lwt-sync`, so the scheduler layers below
/// this API (victim selection in `lwt-sched`, the MassiveThreads-style
/// stealers) can draw from the same generators without a dependency
/// cycle; this re-export is the canonical public path.
pub use lwt_sync::rng;
