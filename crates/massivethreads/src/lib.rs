//! # lwt-massive — a MassiveThreads-model lightweight-thread runtime
//!
//! From-scratch Rust implementation of the programming model the paper
//! describes for MassiveThreads (Nakashima & Taura): "a
//! recursion-oriented LWT solution that follows the work-first
//! scheduling policy".
//!
//! * **Workers** are hardware resources (one OS thread each); their
//!   count is fixed at init (`MYTH_NUM_WORKERS`).
//! * Each worker owns a ready queue ([`lwt_sched::ReadyQueue`]: a
//!   lock-free Chase-Lev deque plus an MPSC inbox for cross-worker
//!   submissions); **load balance is pursued with random work
//!   stealing** — an idle worker steals another worker's oldest ULT
//!   from the deque's far end. (Real MassiveThreads guards its deque
//!   with a mutex; the spawn/join fast-path redesign trades that for
//!   the lock-free structure while keeping the same owner-LIFO /
//!   thief-FIFO discipline.)
//! * **Creation policies** ([`Policy`]): *work-first* (`myth_create`
//!   default — "when a new ULT is created, it is immediately executed,
//!   and the current ULT is moved into a ready queue") and *help-first*
//!   (the child is queued, the parent continues). The paper benchmarks
//!   both as "MassiveThreads (W)" and "MassiveThreads (H)".
//!
//! Unlike the other runtimes in this workspace, the *main program runs
//! as a ULT* ([`Runtime::run`]) — exactly as `myth_init` turns `main`
//! into a user-level thread. This is what produces the paper's
//! signature Fig. 2 curves: under help-first the main ULT creates all
//! work units into **its own worker's queue** at constant cost and lets
//! stealing distribute them; under work-first the main flow itself
//! migrates from worker to worker as each spawn displaces it.
//!
//! ## Example
//!
//! ```
//! use lwt_massive::{Config, Policy, Runtime};
//!
//! let rt = Runtime::init(Config { num_workers: 2, ..Config::default() });
//! let out = rt.run(|rt| {
//!     let h = rt.spawn(|| 40 + 2);
//!     h.join()
//! });
//! assert_eq!(out, 42);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lwt_fiber::StackSize;
use lwt_metrics::registry::{emit, COUNTERS, STEAL_DWELL};
use lwt_metrics::{clock, EventKind};
use lwt_sched::{near_first, ParkGroup, ParkResult, RandomVictim, ReadyQueue};
use lwt_sync::SpinLock;
use lwt_ultcore::{
    enter_worker, join_within, run_unit, wait_until, yield_to, DrainError, PollTask, ReadyUnit,
    Requeue, ResultCell, Straggler, TaskResched, UltCore, ABANDON_GRACE,
};

pub use lwt_ultcore::{current_worker, in_ult, yield_now, JoinError};

/// ULT creation policy (`MYTH_CHILD_FIRST` / help-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Child runs immediately; the parent is pushed to the ready deque
    /// (stealable). MassiveThreads' default; the paper's "(W)" series.
    #[default]
    WorkFirst,
    /// Child is queued; the parent keeps running. The paper's "(H)"
    /// series, which wins its Figs. 2/4.
    HelpFirst,
}

/// Runtime configuration (`myth_init` environment).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of workers (`MYTH_NUM_WORKERS`).
    pub num_workers: usize,
    /// Default creation policy (overridable per spawn).
    pub policy: Policy,
    /// ULT stack size (`MYTH_DEF_STKSIZE`).
    pub stack_size: StackSize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            num_workers: std::thread::available_parallelism().map_or(4, usize::from),
            policy: Policy::default(),
            stack_size: StackSize::DEFAULT,
        }
    }
}

struct RtInner {
    /// ULTs and stackless future tasks share the queues
    /// ([`ReadyUnit`]).
    queues: Vec<ReadyQueue<ReadyUnit>>,
    /// Idle-worker parking (wake-one); every push site notifies.
    park: ParkGroup,
    threads: SpinLock<Vec<Option<std::thread::JoinHandle<()>>>>,
    stop: AtomicBool,
    /// Bounded-drain escape hatch: workers exit even with (wedged)
    /// units still queued once a `shutdown_within` deadline expires.
    abandon: AtomicBool,
    policy: Policy,
    stack_size: StackSize,
    shut: AtomicBool,
}

/// The MassiveThreads-model runtime. Cheap to clone.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

/// Join handle for a spawned ULT (`myth_thread_t` + `myth_join`).
pub struct Handle<T> {
    ult: Arc<UltCore>,
    result: Arc<ResultCell<T>>,
}

impl<T> Handle<T> {
    /// Wait for completion (`myth_join`) and take the result, surfacing
    /// an escaped panic as a [`JoinError`] instead of re-raising it.
    /// Inside a ULT the wait yields, letting the worker keep executing
    /// (and stealing) other work.
    ///
    /// # Errors
    ///
    /// [`JoinError`] carrying the panic payload.
    pub fn try_join(self) -> Result<T, JoinError> {
        wait_until(|| self.ult.is_terminated());
        // Causal join edge: this context observed the unit's completion.
        lwt_metrics::span::on_join(self.ult.span_id());
        if let Some(p) = self.ult.take_panic() {
            return Err(JoinError::new(p));
        }
        // SAFETY: TERMINATED observed; sole joiner.
        Ok(unsafe { self.result.take() }.expect("massivethreads result missing"))
    }

    /// Wait for completion and take the result.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that escaped the ULT's closure.
    pub fn join(self) -> T {
        self.try_join().unwrap_or_else(|e| e.resume())
    }

    /// Non-consuming completion test.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.ult.is_terminated()
    }
}

impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("massive::Handle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl Runtime {
    /// Initialize workers (`myth_init`).
    ///
    /// # Panics
    ///
    /// Panics if `config.num_workers` is zero.
    #[must_use]
    pub fn init(config: Config) -> Self {
        assert!(config.num_workers > 0, "need at least one worker");
        let inner = Arc::new(RtInner {
            queues: (0..config.num_workers).map(|_| ReadyQueue::new()).collect(),
            park: ParkGroup::new(config.num_workers),
            threads: SpinLock::new(Vec::new()),
            stop: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
            policy: config.policy,
            stack_size: config.stack_size,
            shut: AtomicBool::new(false),
        });
        let rt = Runtime { inner };
        let mut threads = rt.inner.threads.lock();
        for w in 0..config.num_workers {
            let inner = rt.inner.clone();
            COUNTERS.os_threads_spawned.inc();
            threads.push(Some(
                std::thread::Builder::new()
                    .name(format!("myth-w{w}"))
                    .spawn(move || worker_main(&inner, w))
                    .expect("spawn massivethreads worker"),
            ));
        }
        drop(threads);
        rt
    }

    /// [`Runtime::init`] with defaults.
    #[must_use]
    pub fn init_default() -> Self {
        Self::init(Config::default())
    }

    /// Number of workers.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// The configured default creation policy.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.inner.policy
    }

    /// Run `f` as the primary ULT (what `myth_init` does to `main`) and
    /// wait for its result from the calling (external) thread.
    ///
    /// Spawns inside `f` follow the configured policy; under work-first
    /// the "main flow" migrates between workers exactly as the paper
    /// describes for MassiveThreads (W).
    pub fn run<T, F>(&self, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce(&Runtime) -> T + Send + 'static,
    {
        let rt = self.clone();
        let result = ResultCell::new();
        let slot = result.clone();
        let ult = UltCore::new(self.inner.stack_size, move || {
            let value = f(&rt);
            // SAFETY: sole writer, before TERMINATED.
            unsafe { slot.put(value) };
        });
        emit(EventKind::UltSpawn, 0);
        self.inner.queues[0].inject(ult.clone().into());
        self.inner.park.notify_near(0);
        wait_until(|| ult.is_terminated());
        lwt_metrics::span::on_join(ult.span_id());
        if let Some(p) = ult.take_panic() {
            std::panic::resume_unwind(p);
        }
        // SAFETY: TERMINATED observed; sole joiner.
        unsafe { result.take() }.expect("primary ULT result missing")
    }

    /// Create a ULT under the configured policy (`myth_create`).
    pub fn spawn<T, F>(&self, f: F) -> Handle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_with(self.inner.policy, f)
    }

    /// Create a ULT under an explicit policy
    /// (`myth_create_ex` with custom options).
    pub fn spawn_with<T, F>(&self, policy: Policy, f: F) -> Handle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let result = ResultCell::new();
        let slot = result.clone();
        let ult = UltCore::new(self.inner.stack_size, move || {
            let value = f();
            // SAFETY: sole writer, before TERMINATED.
            unsafe { slot.put(value) };
        });
        // `arg` records the spawn path the paper benchmarks separately:
        // 1 = work-first ("(W)"), 0 = help-first ("(H)").
        emit(
            EventKind::UltSpawn,
            u64::from(policy == Policy::WorkFirst),
        );
        match (policy, current_worker()) {
            (Policy::WorkFirst, Some(_)) if in_ult() => {
                // Work-first from inside a ULT: run the child now; the
                // post-switch protocol requeues the parent into the
                // current worker's queue, where it can be stolen.
                if !yield_to(&ult) {
                    // Claim raced (cannot normally happen for a fresh
                    // ULT); degrade to help-first.
                    self.inner.queues[0].inject(ult.clone().into());
                    self.inner.park.notify_near(0);
                }
            }
            (_, Some(w)) => {
                // Help-first from a worker: straight onto this worker's
                // own deque (the zero-allocation owner fast path). Wake
                // a thief so a parked pool still spreads the load.
                self.inner.queues[w].push(ult.clone().into());
                self.inner.park.notify_near(w);
            }
            (_, None) => {
                // External thread: into worker 0's inbox, to be batched
                // onto its deque and stolen from there (the paper's
                // MassiveThreads (H) shape).
                self.inner.queues[0].inject(ult.clone().into());
                self.inner.park.notify_near(0);
            }
        }
        Handle { ult, result }
    }

    /// Enqueue a stackless future task: onto the calling worker's own
    /// deque from inside the runtime (help-first shape — a polled task
    /// cannot displace its poller), else into worker 0's inbox like an
    /// external spawn, from where stealing spreads it.
    pub fn post_task(&self, task: Arc<dyn PollTask>) {
        match current_worker() {
            Some(w) if w < self.inner.queues.len() => {
                self.inner.queues[w].push(ReadyUnit::Task(task));
                self.inner.park.notify_near(w);
            }
            _ => {
                self.inner.queues[0].inject(ReadyUnit::Task(task));
                self.inner.park.notify_near(0);
            }
        }
    }

    /// Enqueue a stackless future task on worker `worker`'s queue —
    /// internal placement the ULT API deliberately does not expose
    /// (the work-first scheduler owns ULT placement; tasks have no
    /// displacement semantics, so pinning them is harmless).
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn post_task_to(&self, worker: usize, task: Arc<dyn PollTask>) {
        self.inner.queues[worker].push(ReadyUnit::Task(task));
        self.inner.park.notify_near(worker);
    }

    /// A cloneable hook that [`Runtime::post_task`]s into this runtime;
    /// holds the shared state alive for late wakes.
    #[must_use]
    pub fn task_poster(&self) -> TaskResched {
        let rt = Runtime {
            inner: self.inner.clone(),
        };
        Arc::new(move |t: Arc<dyn PollTask>| rt.post_task(t))
    }

    /// [`Runtime::task_poster`] pinned to one worker's queue.
    ///
    /// # Panics
    ///
    /// The returned hook panics if `worker` is out of range.
    #[must_use]
    pub fn task_poster_to(&self, worker: usize) -> TaskResched {
        let rt = Runtime {
            inner: self.inner.clone(),
        };
        Arc::new(move |t: Arc<dyn PollTask>| rt.post_task_to(worker, t))
    }

    /// Stop all workers and join their OS threads (`myth_fini`).
    /// Idempotent. Unbounded: a ULT yield-looping on a join that can
    /// never be satisfied keeps its queue occupied forever — use
    /// [`Runtime::shutdown_within`] to degrade gracefully instead.
    pub fn shutdown(&self) {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.stop.store(true, Ordering::Release);
        // A fully parked pool must notice the flag now, not after a
        // backstop timeout.
        self.inner.park.unpark_all();
        let mut threads = self.inner.threads.lock();
        for t in threads.iter_mut() {
            if let Some(t) = t.take() {
                t.join().expect("massivethreads worker panicked");
            }
        }
    }

    /// [`Runtime::shutdown`] with a drain deadline: wait up to
    /// `deadline` for the workers to drain their deques, then order
    /// them to abandon the rest and report stragglers. Workers are
    /// joined either way — on `Err` nothing is still running, but the
    /// listed units never completed. Idempotent (later calls return
    /// `Ok`).
    ///
    /// # Errors
    ///
    /// [`DrainError`] when the deadline expired with units still
    /// queued or running.
    pub fn shutdown_within(&self, deadline: std::time::Duration) -> Result<(), DrainError> {
        if self.inner.shut.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.inner.stop.store(true, Ordering::Release);
        // Wake every sleeper *before* the drain deadline starts: a
        // fully parked pool drains instantly instead of eating the
        // deadline in 20–200 ms backstop increments.
        self.inner.park.unpark_all();
        let handles: Vec<_> = {
            let mut threads = self.inner.threads.lock();
            threads.iter_mut().filter_map(Option::take).collect()
        };
        let timed_out = !join_within(&handles, deadline);
        if timed_out {
            self.inner.abandon.store(true, Ordering::Release);
            self.inner.park.unpark_all();
            // Grace for workers idling between units to notice the flag.
            join_within(&handles, ABANDON_GRACE);
        }
        for t in handles {
            if t.is_finished() {
                t.join().expect("massivethreads worker panicked");
            } else {
                // Wedged inside a unit: detach rather than hang (never
                // kill); the thread's Arcs keep its shared state alive.
                drop(t);
            }
        }
        if timed_out {
            let stragglers = self
                .inner
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(worker, q)| Straggler {
                    worker,
                    pending: q.len(),
                    what: "worker deque",
                })
                .collect();
            Err(DrainError {
                waited: deadline,
                stragglers,
            })
        } else {
            Ok(())
        }
    }
}

impl Drop for RtInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.park.unpark_all();
        for t in self.threads.lock().iter_mut() {
            if let Some(t) = t.take() {
                let _ = t.join();
            }
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("massive::Runtime")
            .field("workers", &self.num_workers())
            .field("policy", &self.inner.policy)
            .finish()
    }
}

fn worker_main(inner: &Arc<RtInner>, w: usize) {
    let requeue: Arc<dyn Requeue> = {
        let q = inner.clone();
        Arc::new(move |worker: usize, u: Arc<UltCore>| {
            // Yielded/displaced ULTs go to the *back* of the current
            // worker's queue (the inbox): the owner pops its deque
            // LIFO, so queued children run before a yield-looping
            // joiner (progress), and the displaced main flow becomes
            // stealable once the owner batches the inbox onto the
            // deque — the paper's "another thread steals the main
            // task".
            q.queues[worker].inject(u.into());
            q.park.notify_near(worker);
        })
    };
    let _guard = enter_worker(w, requeue);
    inner.queues[w].bind();
    let victims = RandomVictim::new(inner.queues.len(), 0x9E3779B9 ^ (w as u64) << 17 | 1);
    let mut backoff = lwt_sync::Backoff::new();
    // Timestamp of the moment this worker ran dry; 0 while it has
    // work. Feeds the steal-loop dwell histogram on the next acquire.
    let mut idle_since_ns: u64 = 0;
    let heartbeat = lwt_chaos::register_worker("massivethreads", w);
    loop {
        heartbeat.beat();
        if inner.abandon.load(Ordering::Acquire) {
            break;
        }
        // Own queue first (depth-first), then random stealing.
        let unit = inner.queues[w].pop().or_else(|| {
            lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Steal);
            let v = victims.pick(w);
            if v == w {
                None
            } else {
                COUNTERS.steal_attempts.inc();
                emit(EventKind::StealAttempt, v as u64);
                let stolen = inner.queues[v].steal();
                if stolen.is_some() {
                    COUNTERS.steal_hits.inc();
                    emit(EventKind::StealHit, v as u64);
                }
                stolen
            }
        });
        match unit {
            Some(u) => {
                if idle_since_ns != 0 {
                    STEAL_DWELL.record(clock::now_ns().saturating_sub(idle_since_ns));
                    idle_since_ns = 0;
                }
                if lwt_chaos::should_inject(lwt_chaos::FaultSite::YieldPoint) {
                    std::thread::yield_now();
                }
                backoff.reset();
                run_unit(&u);
            }
            None => {
                if idle_since_ns == 0 {
                    idle_since_ns = clock::now_ns();
                }
                if inner.stop.load(Ordering::Acquire) {
                    break;
                }
                lwt_metrics::timeline::enter(lwt_metrics::WorkerState::Idle);
                // Reactor idle hook: collect I/O readiness (wakes
                // repost through this runtime) before backing off.
                if lwt_sched::io_poll() > 0 {
                    backoff.reset();
                    continue;
                }
                backoff.spin();
                if backoff.is_saturated() {
                    // Random probing came up dry long enough: sleep
                    // instead of burning the core. The re-check counts
                    // every reachable unit (own queue in full, victims'
                    // deques only), so a loaded victim the random picks
                    // kept missing aborts the park — and the reset
                    // below sends us back to probing for it.
                    let res = inner.park.park(w, Some(&heartbeat), || {
                        inner.queues[w].len()
                            + near_first(w, inner.queues.len())
                                .map(|v| inner.queues[v].stealable_len())
                                .sum::<usize>()
                    });
                    if matches!(res, ParkResult::FoundWork | ParkResult::Woken) {
                        backoff.reset();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn rt(workers: usize, policy: Policy) -> Runtime {
        Runtime::init(Config {
            num_workers: workers,
            policy,
            stack_size: StackSize(32 * 1024),
        })
    }

    #[test]
    fn run_executes_main_as_ult() {
        let rt = rt(2, Policy::HelpFirst);
        let was_ult = rt.run(|_| in_ult());
        assert!(was_ult);
        rt.shutdown();
    }

    #[test]
    fn spawn_help_first_parent_continues() {
        let rt = rt(1, Policy::HelpFirst);
        let order = Arc::new(SpinLock::new(Vec::new()));
        let o = order.clone();
        rt.run(move |rt| {
            let o2 = o.clone();
            let h = rt.spawn(move || o2.lock().push("child"));
            o.lock().push("parent-after-spawn");
            h.join();
        });
        // Help-first on one worker: parent records first.
        assert_eq!(order.lock().clone(), vec!["parent-after-spawn", "child"]);
        rt.shutdown();
    }

    #[test]
    fn spawn_work_first_child_runs_immediately() {
        let rt = rt(1, Policy::WorkFirst);
        let order = Arc::new(SpinLock::new(Vec::new()));
        let o = order.clone();
        rt.run(move |rt| {
            let o2 = o.clone();
            let h = rt.spawn(move || o2.lock().push("child"));
            o.lock().push("parent-after-spawn");
            h.join();
        });
        // Work-first: the child preempts the parent.
        assert_eq!(order.lock().clone(), vec!["child", "parent-after-spawn"]);
        rt.shutdown();
    }

    #[test]
    fn recursive_fib_work_first() {
        let rt = rt(2, Policy::WorkFirst);
        fn fib(rt: &Runtime, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let rt2 = rt.clone();
            let h = rt.spawn(move || fib(&rt2, n - 1));
            let b = fib(rt, n - 2);
            h.join() + b
        }
        let out = rt.run(|rt| fib(rt, 12));
        assert_eq!(out, 144);
        rt.shutdown();
    }

    #[test]
    fn recursive_fib_help_first() {
        let rt = rt(2, Policy::HelpFirst);
        fn fib(rt: &Runtime, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let rt2 = rt.clone();
            let h = rt.spawn(move || fib(&rt2, n - 1));
            let b = fib(rt, n - 2);
            h.join() + b
        }
        let out = rt.run(|rt| fib(rt, 12));
        assert_eq!(out, 144);
        rt.shutdown();
    }

    #[test]
    fn external_spawn_lands_on_worker_zero_queue() {
        let rt = rt(2, Policy::HelpFirst);
        let handles: Vec<_> = (0..50).map(|i| rt.spawn(move || i)).collect();
        let sum: usize = handles.into_iter().map(Handle::join).sum();
        assert_eq!(sum, 50 * 49 / 2);
        rt.shutdown();
    }

    #[test]
    fn work_is_stolen_across_workers() {
        let rt = rt(4, Policy::HelpFirst);
        let seen = Arc::new(SpinLock::new(std::collections::HashSet::new()));
        let handles: Vec<_> = (0..200)
            .map(|_| {
                let seen = seen.clone();
                rt.spawn(move || {
                    seen.lock().insert(current_worker().unwrap());
                    // Give thieves a window.
                    std::thread::yield_now();
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        // All spawned to worker 0; stealing must have spread them.
        let seen = seen.lock().clone();
        assert!(seen.len() > 1, "no work stealing happened: {seen:?}");
        rt.shutdown();
    }

    #[test]
    fn yields_work_inside_ults() {
        let rt = rt(1, Policy::HelpFirst);
        let v = rt.run(|rt| {
            let h = rt.spawn(|| {
                for _ in 0..3 {
                    yield_now();
                }
                5
            });
            h.join()
        });
        assert_eq!(v, 5);
        rt.shutdown();
    }

    #[test]
    fn per_spawn_policy_override() {
        let rt = rt(1, Policy::WorkFirst);
        let order = Arc::new(SpinLock::new(Vec::new()));
        let o = order.clone();
        rt.run(move |rt| {
            let o2 = o.clone();
            let h = rt.spawn_with(Policy::HelpFirst, move || o2.lock().push("child"));
            o.lock().push("parent");
            h.join();
        });
        assert_eq!(order.lock().clone(), vec!["parent", "child"]);
        rt.shutdown();
    }

    #[test]
    fn counts_are_exact_under_load() {
        let rt = rt(3, Policy::WorkFirst);
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        rt.run(move |rt| {
            let handles: Vec<_> = (0..300)
                .map(|_| {
                    let c = c2.clone();
                    rt.spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 300);
        rt.shutdown();
    }

    #[test]
    fn panic_propagates_through_run_and_join() {
        let rt = rt(1, Policy::HelpFirst);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|_| panic!("myth boom"))
        }))
        .expect_err("run must re-raise");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"myth boom"));
        rt.shutdown();
    }

    #[test]
    fn shutdown_idempotent_and_drop_safe() {
        let rt = rt(2, Policy::WorkFirst);
        rt.run(|_| ());
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }
}
