//! Raw Linux epoll/eventfd syscalls, invoked directly via the
//! `syscall` instruction.
//!
//! The workspace is hermetic — no libc crate, no registry crates (see
//! README.md "Hermetic build") — and `std` exposes no epoll surface,
//! so the reactor makes its own kernel calls, the same way `lwt-fiber`
//! does its own context switching with `naked_asm!` instead of
//! `ucontext`. Only the five calls the reactor needs are wrapped; the
//! sockets themselves come from `std::net` (std is not a registry
//! dependency) and cross this boundary as raw fds.
//!
//! x86-64 Linux only, like the fiber layer's SysV switch stub. The
//! syscall ABI here: number in `rax`, args in `rdi`/`rsi`/`rdx`/`r10`,
//! return in `rax` (negative values are `-errno`), `rcx`/`r11`
//! clobbered by the instruction itself.

#![allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]

use std::arch::asm;
use std::io;

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
compile_error!("lwt-net's reactor makes raw x86-64 Linux syscalls (epoll); other targets are not supported");

// Syscall numbers (x86-64).
const SYS_READ: usize = 0;
const SYS_WRITE: usize = 1;
const SYS_EPOLL_WAIT: usize = 232;
const SYS_EPOLL_CTL: usize = 233;
const SYS_EVENTFD2: usize = 290;
const SYS_EPOLL_CREATE1: usize = 291;

/// `epoll_ctl` ops.
pub const EPOLL_CTL_ADD: i32 = 1;
/// Remove an fd from the interest set.
pub const EPOLL_CTL_DEL: i32 = 2;

/// Readable (or a connection is pending on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable (connect completed / send buffer has room).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition; delivered regardless of the interest mask.
pub const EPOLLERR: u32 = 0x008;
/// Hangup; delivered regardless of the interest mask.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing end (half-close visibility).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

/// One `epoll_event`, kernel layout. Packed on x86-64 (the kernel's
/// `__EPOLL_PACKED`): 12 bytes, `data` unaligned.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLL*`).
    pub events: u32,
    /// The `u64` registered with the fd — the reactor's token.
    pub data: u64,
}

impl EpollEvent {
    /// An empty slot for `epoll_wait` buffers.
    pub const ZERO: EpollEvent = EpollEvent { events: 0, data: 0 };
}

#[inline]
unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    // SAFETY: caller passes arguments valid for syscall `n`.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// Create an epoll instance (`EPOLL_CLOEXEC`).
pub fn epoll_create1() -> io::Result<i32> {
    // SAFETY: no pointers involved.
    let ret = unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

/// Add/remove `fd` in `epfd`'s interest set. `events`/`data` are
/// ignored by the kernel for `EPOLL_CTL_DEL`.
pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let ev = EpollEvent { events, data };
    let ptr = if op == EPOLL_CTL_DEL {
        std::ptr::null()
    } else {
        &raw const ev
    };
    // SAFETY: `ev` outlives the call; null is allowed for DEL.
    let ret = unsafe { syscall4(SYS_EPOLL_CTL, epfd as usize, op as usize, fd as usize, ptr as usize) };
    check(ret).map(|_| ())
}

/// Wait for events on `epfd`, filling `buf`. `timeout_ms` of 0 polls;
/// negative blocks. Retries `EINTR` internally. Returns the number of
/// events written.
pub fn epoll_wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `buf` is valid for `buf.len()` events for the call.
        let ret = unsafe {
            syscall4(
                SYS_EPOLL_WAIT,
                epfd as usize,
                buf.as_mut_ptr() as usize,
                buf.len(),
                timeout_ms as usize,
            )
        };
        match check(ret) {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

/// Create a nonblocking eventfd (the reactor's self-wake channel).
pub fn eventfd() -> io::Result<i32> {
    // SAFETY: no pointers involved.
    let ret = unsafe { syscall4(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

/// Add 1 to an eventfd's counter (wakes an `epoll_wait` watching it).
pub fn eventfd_signal(fd: i32) -> io::Result<()> {
    let one: u64 = 1;
    // SAFETY: 8 readable bytes at `&one` for the write.
    let ret = unsafe { syscall4(SYS_WRITE, fd as usize, (&raw const one) as usize, 8, 0) };
    check(ret).map(|_| ())
}

/// Drain an eventfd's counter (nonblocking; `WouldBlock` means it was
/// already zero).
pub fn eventfd_drain(fd: i32) {
    let mut buf: u64 = 0;
    // SAFETY: 8 writable bytes at `&mut buf` for the read.
    let ret = unsafe { syscall4(SYS_READ, fd as usize, (&raw mut buf) as usize, 8, 0) };
    let _ = ret; // EAGAIN (empty) is the expected steady state.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_is_kernel_layout() {
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        assert_eq!(std::mem::align_of::<EpollEvent>(), 1);
    }

    #[test]
    fn epoll_instance_round_trip() {
        let epfd = epoll_create1().expect("epoll_create1");
        let efd = eventfd().expect("eventfd");
        epoll_ctl(epfd, EPOLL_CTL_ADD, efd, EPOLLIN | EPOLLET, 42).expect("ctl add");

        let mut buf = [EpollEvent::ZERO; 4];
        assert_eq!(epoll_wait(epfd, &mut buf, 0).expect("wait"), 0);

        eventfd_signal(efd).expect("signal");
        let n = epoll_wait(epfd, &mut buf, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ buf[0].data }, 42);
        assert_ne!({ buf[0].events } & EPOLLIN, 0);

        // Edge-triggered: drained and re-signaled fires a fresh edge.
        eventfd_drain(efd);
        assert_eq!(epoll_wait(epfd, &mut buf, 0).expect("wait"), 0);
        eventfd_signal(efd).expect("signal");
        assert_eq!(epoll_wait(epfd, &mut buf, 1000).expect("wait"), 1);

        epoll_ctl(epfd, EPOLL_CTL_DEL, efd, 0, 0).expect("ctl del");
    }
}
