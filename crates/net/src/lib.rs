//! # lwt-net — epoll reactor + TCP/HTTP serving on the GLT API
//!
//! The reviewed paper's runtimes (and this workspace's five
//! reproductions of them) schedule *CPU-bound* work: the moment a work
//! unit issues a blocking `read(2)`, it takes its whole worker thread
//! hostage — the exact runtime/I/O mismatch that motivates
//! runtime-aware communication layers in the HPC literature. This
//! crate removes that mismatch for TCP:
//!
//! * [`TcpListener`] / [`TcpStream`] are nonblocking sockets whose
//!   operations **suspend the calling work unit**, not the worker. A
//!   stackful ULT (`Glt::ult_create`) relax-loops on a readiness flag,
//!   yielding its worker to other units — the same wait discipline as
//!   `lwt_sync::Event`, watchdog-registered. An async task
//!   (`Glt::spawn_async`) parks its waker and returns `Poll::Pending`;
//!   the reactor rewakes it through the task-cell waker, which
//!   re-enqueues via the backend's `post_task` and `ParkGroup` notify.
//! * A process-global **edge-triggered epoll reactor** (one driver
//!   thread + idle-worker polls through the `lwt_sched::io_poll`
//!   hook) turns kernel readiness into those wakes. Contract:
//!   DESIGN.md §15.
//! * [`http`] is a minimal HTTP/1.1 server — bounded parser,
//!   keep-alive, one async task per connection — that runs unchanged
//!   on all five backends, because it only speaks the GLT API. It
//!   carries the stack's overload contract (DESIGN.md §16):
//!   admission control (connection cap + in-flight shedding with
//!   `503`), timer-wheel deadlines (idle/header/read/write), handler
//!   panic isolation, and graceful drain.
//!
//! Observability and chaos ride along: `io_*`/timer/shed counters and
//! `IoWait`/`IoReady`/`TimerArm`/`TimerFire` ring events in
//! lwt-metrics, and six fault sites (`NetPartialWrite`,
//! `NetSpuriousEagain`, `NetDelayedReadiness`, `NetConnKill`,
//! `NetReadStall`, `HandlerPanic`) in lwt-chaos.
//!
//! ## Example: echo between two work units
//!
//! ```
//! use lwt_core::{BackendKind, Glt};
//! use lwt_net::{TcpListener, TcpStream};
//!
//! let glt = Glt::builder(BackendKind::Argobots).workers(2).build();
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//!
//! let server = glt.ult_create(move || {
//!     let (stream, _peer) = listener.accept().unwrap();
//!     let mut buf = [0u8; 16];
//!     let n = stream.read(&mut buf).unwrap();
//!     stream.write_all(&buf[..n]).unwrap();
//! });
//! let client = glt.spawn_async(async move {
//!     let stream = TcpStream::connect(addr).unwrap();
//!     stream.write_all_async(b"hello").await.unwrap();
//!     let mut buf = [0u8; 16];
//!     stream.read_exact_async(&mut buf[..5]).await.unwrap();
//!     buf
//! });
//!
//! assert_eq!(&client.join()[..5], b"hello");
//! server.join();
//! glt.finalize().expect("clean drain");
//! ```

#![deny(missing_docs)]

pub mod http;
mod reactor;
mod sys;
mod tcp;

pub use reactor::{ensure_started, live_registrations};
pub use tcp::{TcpListener, TcpStream};
