//! A minimal HTTP/1.1 server on the GLT API: bounded request parser,
//! keep-alive connection loop, and a `serve` entry point that runs the
//! same handler on any of the five backends.
//!
//! Deliberately small — request line + headers + `Content-Length`
//! bodies, no chunked encoding, no TLS — but production-shaped where
//! it matters for a runtime study: every limit is enforced *before*
//! buffering (oversized headers get `431`, oversized bodies `413`),
//! connections are keep-alive by default so a load generator can
//! drive many requests per socket, and each connection is one async
//! task (`Glt::spawn_async`), so ten thousand idle connections cost
//! ten thousand parked task cells — not ten thousand stacks, and not
//! one wedged worker.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use lwt_core::Glt;
use lwt_sync::SpinLock;

use crate::reactor::Registration;
use crate::tcp::{TcpListener, TcpStream};

/// Parser and buffering limits for one connection.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes in the request line + headers block (the bytes up
    /// to and including the `\r\n\r\n`). Exceeding it: `431`.
    pub max_head_bytes: usize,
    /// Maximum number of header lines. Exceeding it: `431`.
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted. Exceeding it: `413`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (`/path?query`).
    pub target: String,
    /// Header name/value pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
    keep_alive: bool,
}

impl Request {
    /// First header value whose name matches case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection stays open after this exchange
    /// (HTTP/1.1 default unless `Connection: close`).
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// Start from a status code (reason phrase filled for the common
    /// ones).
    #[must_use]
    pub fn new(status: u16) -> Response {
        Response {
            status,
            reason: reason_phrase(status),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Shorthand for a `200 OK` with `body`.
    #[must_use]
    pub fn ok(body: impl Into<Vec<u8>>) -> Response {
        let mut r = Response::new(200);
        r.body = body.into();
        r
    }

    /// Append a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Replace the body.
    #[must_use]
    pub fn body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }

    /// The status code.
    #[must_use]
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialize head + body to wire bytes. `Content-Length` and
    /// `Connection` are emitted by the server loop, not stored.
    fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes(),
        );
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if !keep_alive {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Status",
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Outcome of one parse attempt over the connection buffer.
#[derive(Debug)]
pub enum Parse {
    /// A full request: the parsed value plus bytes consumed from the
    /// buffer (head + body).
    Complete(Box<Request>, usize),
    /// Need more bytes.
    Partial,
    /// Malformed or over-limit input; respond with this status and
    /// close.
    Reject(u16),
}

/// Try to parse one request from the front of `buf`. Pure function of
/// the bytes — both the sync and async connection loops drive it.
#[must_use]
pub fn parse_request(buf: &[u8], limits: &Limits) -> Parse {
    let head_end = match find_head_end(buf) {
        Some(i) => i,
        None => {
            return if buf.len() > limits.max_head_bytes {
                Parse::Reject(431)
            } else {
                Parse::Partial
            }
        }
    };
    if head_end > limits.max_head_bytes {
        return Parse::Reject(431);
    }
    let head = match std::str::from_utf8(&buf[..head_end - 4]) {
        Ok(s) => s,
        Err(_) => return Parse::Reject(400),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() && parts.next().is_none() => {
            (m, t, v)
        }
        _ => return Parse::Reject(400),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parse::Reject(400);
    }

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Parse::Reject(431);
        }
        let (name, value) = match line.split_once(':') {
            Some(nv) => nv,
            None => return Parse::Reject(400),
        };
        if name.is_empty() || name.contains(' ') {
            return Parse::Reject(400);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let content_length = match header_of(&headers, "content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Parse::Reject(400),
        },
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Parse::Reject(413);
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Parse::Partial;
    }

    let keep_alive = match header_of(&headers, "connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };
    Parse::Complete(
        Box::new(Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: buf[head_end..total].to_vec(),
            keep_alive,
        }),
        total,
    )
}

fn header_of<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The request handler: borrow a request, build a response. Shared by
/// every connection task, so it must be `Send + Sync`.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server: an acceptor work unit plus one async task
/// per live connection, all spawned through the given [`Glt`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    listener_stop: Arc<dyn Fn() + Send + Sync>,
    conns: Arc<SpinLock<Vec<Weak<Registration>>>>,
    active: Arc<AtomicUsize>,
    acceptor: lwt_core::GltHandle<()>,
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Stop accepting, unstick every live connection (their next I/O
    /// returns `NotConnected`, ending the task), and join the
    /// acceptor. Idempotent on the listener; safe while requests are
    /// in flight — in-progress writes finish, parked reads abort.
    pub fn shutdown(self) {
        (self.listener_stop)();
        for weak in self.conns.lock().drain(..) {
            if let Some(reg) = weak.upgrade() {
                reg.close_wake();
            }
        }
        self.acceptor.join();
    }
}

/// Serve `handler` on `listener`, spawning the acceptor as a ULT and
/// each connection as an async task on `glt`. Default [`Limits`].
///
/// The returned handle borrows nothing from `glt` — but every spawned
/// unit lives in that runtime, so call [`ServerHandle::shutdown`]
/// before `Glt::finalize`, or finalize will report the acceptor as a
/// straggler.
pub fn serve(
    glt: &Glt,
    listener: TcpListener,
    handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
) -> io::Result<ServerHandle> {
    serve_with(glt, listener, Limits::default(), Arc::new(handler))
}

/// [`serve`] with explicit limits and a pre-shared handler.
pub fn serve_with(
    glt: &Glt,
    listener: TcpListener,
    limits: Limits,
    handler: Handler,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let stop_listener = Arc::clone(&listener);
    let conns: Arc<SpinLock<Vec<Weak<Registration>>>> = Arc::new(SpinLock::new(Vec::new()));
    let active = Arc::new(AtomicUsize::new(0));

    let acceptor = {
        let glt2 = glt.clone();
        let conns = Arc::clone(&conns);
        let active = Arc::clone(&active);
        glt.ult_create(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    {
                        // Track the registration so shutdown can
                        // unstick the connection; compact dead slots
                        // opportunistically to keep the list bounded
                        // by the number of *live* connections.
                        let mut lock = conns.lock();
                        if lock.len() == lock.capacity() {
                            lock.retain(|w| w.upgrade().is_some());
                        }
                        lock.push(Arc::downgrade(stream.registration()));
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    let active = Arc::clone(&active);
                    let handler = Arc::clone(&handler);
                    drop(glt2.spawn_async(async move {
                        let _ = connection_loop(&stream, limits, &handler).await;
                        active.fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                // NotConnected = shutdown; anything else on a listener
                // (EMFILE under fd pressure) also ends the acceptor
                // rather than spinning on a broken socket.
                Err(_) => return,
            }
        })
    };

    Ok(ServerHandle {
        addr,
        listener_stop: Arc::new(move || stop_listener.shutdown()),
        conns,
        active,
        acceptor,
    })
}

/// One connection's keep-alive loop: parse, handle, respond, repeat.
async fn connection_loop(stream: &TcpStream, limits: Limits, handler: &Handler) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&buf, &limits) {
            Parse::Complete(req, consumed) => {
                buf.drain(..consumed);
                let keep = req.keep_alive();
                let resp = handler(&req);
                stream.write_all_async(&resp.to_bytes(keep)).await?;
                if !keep {
                    return Ok(());
                }
            }
            Parse::Partial => {
                let n = stream.read_async(&mut chunk).await?;
                if n == 0 {
                    // Clean EOF between requests; mid-request EOF just
                    // ends the task (nobody is left to read an error).
                    return Ok(());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Parse::Reject(status) => {
                let resp = Response::new(status);
                stream.write_all_async(&resp.to_bytes(false)).await?;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &[u8]) -> Parse {
        parse_request(raw, &Limits::default())
    }

    #[test]
    fn parses_a_get_with_headers() {
        let raw = b"GET /hello?x=1 HTTP/1.1\r\nHost: a\r\nX-Trace: 7\r\n\r\n";
        match req(raw) {
            Parse::Complete(r, consumed) => {
                assert_eq!(consumed, raw.len());
                assert_eq!(r.method, "GET");
                assert_eq!(r.target, "/hello?x=1");
                assert_eq!(r.header("x-trace"), Some("7"));
                assert!(r.keep_alive());
                assert!(r.body.is_empty());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn body_follows_content_length_and_pipelines() {
        let raw = b"POST /e HTTP/1.1\r\nContent-Length: 4\r\n\r\nwxyzGET / HTTP/1.1\r\n\r\n";
        match req(raw) {
            Parse::Complete(r, consumed) => {
                assert_eq!(r.body, b"wxyz");
                // Second pipelined request still in the buffer.
                match parse_request(&raw[consumed..], &Limits::default()) {
                    Parse::Complete(r2, _) => assert_eq!(r2.target, "/"),
                    other => panic!("expected Complete, got {other:?}"),
                }
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn partial_until_blank_line_and_full_body() {
        assert!(matches!(req(b"GET / HTTP/1.1\r\nHost:"), Parse::Partial));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort"),
            Parse::Partial
        ));
    }

    #[test]
    fn connection_close_and_http10_default() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        match req(raw) {
            Parse::Complete(r, _) => assert!(!r.keep_alive()),
            other => panic!("{other:?}"),
        }
        match req(b"GET / HTTP/1.0\r\n\r\n") {
            Parse::Complete(r, _) => assert!(!r.keep_alive()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limits_are_enforced() {
        // Header block too large: reject even before the blank line.
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', 9000));
        assert!(matches!(req(&big), Parse::Reject(431)));

        // Too many header lines.
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            many.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert!(matches!(req(&many), Parse::Reject(431)));

        // Declared body over the cap.
        let huge = b"POST / HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n";
        assert!(matches!(req(huge), Parse::Reject(413)));
    }

    #[test]
    fn malformed_requests_are_400() {
        assert!(matches!(req(b"BROKEN\r\n\r\n"), Parse::Reject(400)));
        assert!(matches!(req(b"GET / HTTP/9.9\r\n\r\n"), Parse::Reject(400)));
        assert!(matches!(
            req(b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n"),
            Parse::Reject(400)
        ));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Parse::Reject(400)
        ));
    }

    #[test]
    fn response_wire_format() {
        let bytes = Response::ok("hi").header("X-K", "v").to_bytes(true);
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("X-K: v\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.ends_with("\r\n\r\nhi"));
        let closed = String::from_utf8(Response::new(404).to_bytes(false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"));
        assert!(closed.contains("404 Not Found"));
    }
}
