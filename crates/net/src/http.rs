//! A minimal HTTP/1.1 server on the GLT API: bounded request parser,
//! keep-alive connection loop, and a `serve` entry point that runs the
//! same handler on any of the five backends.
//!
//! Deliberately small — request line + headers + `Content-Length`
//! bodies, no chunked encoding, no TLS — but production-shaped where
//! it matters for a runtime study: every limit is enforced *before*
//! buffering (oversized headers get `431`, oversized bodies `413`),
//! connections are keep-alive by default so a load generator can
//! drive many requests per socket, and each connection is one async
//! task (`Glt::spawn_async`), so ten thousand idle connections cost
//! ten thousand parked task cells — not ten thousand stacks, and not
//! one wedged worker.
//!
//! Production-shaped also means *overload-shaped* (DESIGN.md §16).
//! [`ServerConfig`] carries the knobs, each with an `LWT_NET_*` env
//! override; under rising load the server degrades in a fixed order —
//! pause accepting at the connection cap (kernel backlog absorbs the
//! burst), shed requests over the in-flight cap with `503` +
//! `Retry-After`, and on [`ServerHandle::shutdown`] drain in-flight
//! work up to a grace period before aborting stragglers with a
//! flight-recorder bundle. Slow peers are bounded by timer-wheel
//! deadlines (idle, header/slow-loris → `408`, per-read body/write),
//! and a panicking handler costs one connection (`500` + close),
//! never a worker thread.

use std::io;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use lwt_chaos::{should_inject, FaultSite};
use lwt_core::Glt;
use lwt_metrics::{emit, EventKind, COUNTERS};
use lwt_sync::SpinLock;

use crate::reactor::Registration;
use crate::tcp::{TcpListener, TcpStream, TimerGuard};

/// Parser and buffering limits for one connection.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes in the request line + headers block (the bytes up
    /// to and including the `\r\n\r\n`). Exceeding it: `431`.
    pub max_head_bytes: usize,
    /// Maximum number of header lines. Exceeding it: `431`.
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted. Exceeding it: `413`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (`/path?query`).
    pub target: String,
    /// Header name/value pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
    keep_alive: bool,
}

impl Request {
    /// First header value whose name matches case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection stays open after this exchange
    /// (HTTP/1.1 default unless `Connection: close`).
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// Start from a status code (reason phrase filled for the common
    /// ones).
    #[must_use]
    pub fn new(status: u16) -> Response {
        Response {
            status,
            reason: reason_phrase(status),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Shorthand for a `200 OK` with `body`.
    #[must_use]
    pub fn ok(body: impl Into<Vec<u8>>) -> Response {
        let mut r = Response::new(200);
        r.body = body.into();
        r
    }

    /// Append a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Replace the body.
    #[must_use]
    pub fn body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }

    /// The status code.
    #[must_use]
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialize head + body to wire bytes. `Content-Length` and
    /// `Connection` are emitted by the server loop, not stored.
    fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes(),
        );
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        if !keep_alive {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Outcome of one parse attempt over the connection buffer.
#[derive(Debug)]
pub enum Parse {
    /// A full request: the parsed value plus bytes consumed from the
    /// buffer (head + body).
    Complete(Box<Request>, usize),
    /// Need more bytes.
    Partial,
    /// Malformed or over-limit input; respond with this status and
    /// close.
    Reject(u16),
}

/// Try to parse one request from the front of `buf`. Pure function of
/// the bytes — both the sync and async connection loops drive it.
#[must_use]
pub fn parse_request(buf: &[u8], limits: &Limits) -> Parse {
    let head_end = match find_head_end(buf) {
        Some(i) => i,
        None => {
            return if buf.len() > limits.max_head_bytes {
                Parse::Reject(431)
            } else {
                Parse::Partial
            }
        }
    };
    if head_end > limits.max_head_bytes {
        return Parse::Reject(431);
    }
    let head = match std::str::from_utf8(&buf[..head_end - 4]) {
        Ok(s) => s,
        Err(_) => return Parse::Reject(400),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() && parts.next().is_none() => {
            (m, t, v)
        }
        _ => return Parse::Reject(400),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parse::Reject(400);
    }

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Parse::Reject(431);
        }
        let (name, value) = match line.split_once(':') {
            Some(nv) => nv,
            None => return Parse::Reject(400),
        };
        if name.is_empty() || name.contains(' ') {
            return Parse::Reject(400);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let content_length = match header_of(&headers, "content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Parse::Reject(400),
        },
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Parse::Reject(413);
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Parse::Partial;
    }

    let keep_alive = match header_of(&headers, "connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };
    Parse::Complete(
        Box::new(Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: buf[head_end..total].to_vec(),
            keep_alive,
        }),
        total,
    )
}

fn header_of<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The request handler: borrow a request, build a response. Shared by
/// every connection task, so it must be `Send + Sync`.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Overload-control knobs for one server (DESIGN.md §16). Every field
/// has an environment override so deployed binaries can be retuned
/// without a rebuild; `0` always means "unlimited" / "no deadline".
///
/// Degradation order under rising load: **pause accepting** (kernel
/// backlog absorbs the burst) → **shed requests with `503 +
/// Retry-After`** (cheap, byte-correct rejection) → **drain-abort on
/// shutdown** (stragglers cut after the grace period, with a flight-
/// recorder bundle for the post-mortem).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Parser and buffering limits per connection.
    pub limits: Limits,
    /// Hard cap on concurrently served connections; at the cap the
    /// acceptor pauses (new connections wait in the kernel backlog)
    /// instead of oversubscribing. Env: `LWT_NET_MAX_CONNS`.
    pub max_conns: usize,
    /// Cap on requests simultaneously inside handlers; excess
    /// requests are shed with `503` + `Retry-After: 1` without
    /// touching the handler. Env: `LWT_NET_MAX_INFLIGHT`.
    pub max_inflight: usize,
    /// Per-read deadline for request *body* bytes, ms. A mid-body
    /// stall past this gets `408` and the connection closed. Env:
    /// `LWT_NET_READ_TIMEOUT_MS`.
    pub read_timeout_ms: u64,
    /// Per-write deadline for response bytes, ms (slow-reader
    /// protection; an expired write abandons the connection). Env:
    /// `LWT_NET_WRITE_TIMEOUT_MS`.
    pub write_timeout_ms: u64,
    /// Absolute deadline for receiving one complete request head,
    /// armed at the first header byte — the slow-loris defense:
    /// trickling one byte per second cannot extend it. Expiry: `408`.
    /// Env: `LWT_NET_HEADER_TIMEOUT_MS`.
    pub header_timeout_ms: u64,
    /// Keep-alive idle deadline between requests, ms; expiry closes
    /// the connection quietly (no response — nothing was asked).
    /// Env: `LWT_NET_IDLE_TIMEOUT_MS`.
    pub idle_timeout_ms: u64,
    /// Grace period [`ServerHandle::shutdown`] waits for in-flight
    /// requests before aborting stragglers. Env:
    /// `LWT_NET_DRAIN_TIMEOUT_MS`.
    pub drain_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            limits: Limits::default(),
            max_conns: 4096,
            max_inflight: 1024,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            header_timeout_ms: 10_000,
            idle_timeout_ms: 60_000,
            drain_timeout_ms: 5_000,
        }
    }
}

impl ServerConfig {
    /// The defaults with any `LWT_NET_*` environment overrides
    /// applied (see the per-field docs). Unparsable values fall back
    /// to the default rather than erroring — a typo in an env var
    /// must not take the server down.
    #[must_use]
    pub fn from_env() -> ServerConfig {
        let d = ServerConfig::default();
        ServerConfig {
            limits: d.limits,
            max_conns: env_usize("LWT_NET_MAX_CONNS", d.max_conns),
            max_inflight: env_usize("LWT_NET_MAX_INFLIGHT", d.max_inflight),
            read_timeout_ms: env_u64("LWT_NET_READ_TIMEOUT_MS", d.read_timeout_ms),
            write_timeout_ms: env_u64("LWT_NET_WRITE_TIMEOUT_MS", d.write_timeout_ms),
            header_timeout_ms: env_u64("LWT_NET_HEADER_TIMEOUT_MS", d.header_timeout_ms),
            idle_timeout_ms: env_u64("LWT_NET_IDLE_TIMEOUT_MS", d.idle_timeout_ms),
            drain_timeout_ms: env_u64("LWT_NET_DRAIN_TIMEOUT_MS", d.drain_timeout_ms),
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn ms_opt(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// A running HTTP server: an acceptor work unit plus one async task
/// per live connection, all spawned through the given [`Glt`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    listener_stop: Arc<dyn Fn() + Send + Sync>,
    conns: Arc<SpinLock<Vec<Weak<Registration>>>>,
    active: Arc<AtomicUsize>,
    inflight: Arc<AtomicUsize>,
    stopping: Arc<AtomicBool>,
    drain_timeout_ms: u64,
    acceptor: lwt_core::GltHandle<()>,
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Requests currently inside handlers.
    #[must_use]
    pub fn inflight_requests(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Graceful drain with the configured
    /// [`drain_timeout_ms`](ServerConfig::drain_timeout_ms) grace
    /// period — see [`shutdown_within`](Self::shutdown_within).
    pub fn shutdown(self) {
        let grace = Duration::from_millis(self.drain_timeout_ms);
        self.shutdown_within(grace);
    }

    /// Graceful drain: stop accepting (and join the acceptor), let
    /// in-flight requests finish for up to `grace`, then abort the
    /// stragglers — every remaining connection is unstuck (its next
    /// I/O returns `NotConnected`, ending the task) and, when any
    /// request was still running, a flight-recorder bundle
    /// (`serve_drain_abort`) captures the state for the post-mortem.
    ///
    /// Keep-alive connections are told `Connection: close` on their
    /// next response once draining starts, so a cooperative client
    /// converges well before the deadline.
    pub fn shutdown_within(self, grace: Duration) {
        self.stopping.store(true, Ordering::SeqCst);
        (self.listener_stop)();
        self.acceptor.join();
        let deadline = Instant::now() + grace;
        while self.inflight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            // Polite wait: yield the work unit when called from one,
            // the thread otherwise (shutdown is control-plane code —
            // a relax loop here is fine).
            if !lwt_core::yield_unit() {
                std::thread::yield_now();
            }
        }
        if self.inflight.load(Ordering::Acquire) > 0 {
            lwt_metrics::flightrec::dump("serve_drain_abort");
        }
        for weak in self.conns.lock().drain(..) {
            if let Some(reg) = weak.upgrade() {
                reg.close_wake();
            }
        }
    }
}

/// Serve `handler` on `listener`, spawning the acceptor as a ULT and
/// each connection as an async task on `glt`.
/// [`ServerConfig::from_env`] supplies the overload knobs.
///
/// The returned handle borrows nothing from `glt` — but every spawned
/// unit lives in that runtime, so call [`ServerHandle::shutdown`]
/// before `Glt::finalize`, or finalize will report the acceptor as a
/// straggler.
pub fn serve(
    glt: &Glt,
    listener: TcpListener,
    handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
) -> io::Result<ServerHandle> {
    serve_config(glt, listener, ServerConfig::from_env(), Arc::new(handler))
}

/// [`serve`] with explicit parser limits (env knobs for everything
/// else).
pub fn serve_with(
    glt: &Glt,
    listener: TcpListener,
    limits: Limits,
    handler: Handler,
) -> io::Result<ServerHandle> {
    let mut config = ServerConfig::from_env();
    config.limits = limits;
    serve_config(glt, listener, config, handler)
}

/// [`serve`] with a fully explicit [`ServerConfig`] (no env reads).
pub fn serve_config(
    glt: &Glt,
    listener: TcpListener,
    config: ServerConfig,
    handler: Handler,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let stop_listener = Arc::clone(&listener);
    let conns: Arc<SpinLock<Vec<Weak<Registration>>>> = Arc::new(SpinLock::new(Vec::new()));
    let active = Arc::new(AtomicUsize::new(0));
    let inflight = Arc::new(AtomicUsize::new(0));
    let stopping = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let glt2 = glt.clone();
        let conns = Arc::clone(&conns);
        let active = Arc::clone(&active);
        let inflight = Arc::clone(&inflight);
        let stopping = Arc::clone(&stopping);
        glt.ult_create(move || loop {
            // Admission, stage 1: at the connection cap, stop calling
            // accept — the kernel backlog absorbs the burst and the
            // load generator sees queueing, not errors. One pause
            // event per episode, however long it lasts.
            if config.max_conns > 0 && active.load(Ordering::Acquire) >= config.max_conns {
                COUNTERS.accept_pauses.inc();
                while active.load(Ordering::Acquire) >= config.max_conns
                    && !stopping.load(Ordering::Acquire)
                {
                    if !lwt_core::yield_unit() {
                        std::thread::yield_now();
                    }
                }
                if stopping.load(Ordering::Acquire) {
                    return;
                }
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(ms_opt(config.read_timeout_ms));
                    stream.set_write_timeout(ms_opt(config.write_timeout_ms));
                    {
                        // Track the registration so shutdown can
                        // unstick the connection; compact dead slots
                        // opportunistically to keep the list bounded
                        // by the number of *live* connections.
                        let mut lock = conns.lock();
                        if lock.len() == lock.capacity() {
                            lock.retain(|w| w.upgrade().is_some());
                        }
                        lock.push(Arc::downgrade(stream.registration()));
                    }
                    active.fetch_add(1, Ordering::Release);
                    let active = Arc::clone(&active);
                    let handler = Arc::clone(&handler);
                    let inflight = Arc::clone(&inflight);
                    let stopping = Arc::clone(&stopping);
                    drop(glt2.spawn_async(async move {
                        let ctx = ConnCtx {
                            stream: &stream,
                            config: &config,
                            handler: &handler,
                            inflight: &inflight,
                            stopping: &stopping,
                        };
                        let _ = connection_loop(&ctx).await;
                        active.fetch_sub(1, Ordering::Release);
                    }));
                }
                // NotConnected = shutdown; anything else on a listener
                // (EMFILE under fd pressure) also ends the acceptor
                // rather than spinning on a broken socket.
                Err(_) => return,
            }
        })
    };

    Ok(ServerHandle {
        addr,
        listener_stop: Arc::new(move || stop_listener.shutdown()),
        conns,
        active,
        inflight,
        stopping,
        drain_timeout_ms: config.drain_timeout_ms,
        acceptor,
    })
}

/// Holds one in-flight slot from handler entry through the response
/// write — [`ServerHandle::shutdown_within`]'s drain wait counts the
/// response bytes as part of the request, so a draining server never
/// cuts a reply mid-write.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Shared state one connection task needs from its server.
struct ConnCtx<'a> {
    stream: &'a TcpStream,
    config: &'a ServerConfig,
    handler: &'a Handler,
    inflight: &'a AtomicUsize,
    stopping: &'a AtomicBool,
}

/// Write a terminal error response, then linger: half-close the write
/// side and drain (briefly) whatever the client was still sending, so
/// the kernel never turns unread bytes into an RST that destroys the
/// in-flight response — a trickling slow-loris client must actually
/// *see* its `408`.
async fn write_final(stream: &TcpStream, resp: &Response) -> io::Result<()> {
    stream.write_all_async(&resp.to_bytes(false)).await?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    let mut linger = TimerGuard::unarmed();
    linger.arm(1_000);
    while let Ok(n) = stream.read_async_deadline(&mut scratch, linger.entry()).await {
        if n == 0 {
            break;
        }
    }
    Ok(())
}

/// Yield the async task once — used by the `NetReadStall` chaos site
/// to stretch a server read across scheduler turns.
async fn yield_task() {
    let mut yielded = false;
    std::future::poll_fn(move |cx| {
        if yielded {
            std::task::Poll::Ready(())
        } else {
            yielded = true;
            cx.waker().wake_by_ref();
            std::task::Poll::Pending
        }
    })
    .await;
}

/// One connection's keep-alive loop: parse, handle, respond, repeat —
/// under the full overload contract (DESIGN.md §16): in-flight
/// shedding with `503`, handler panic isolation (`500` + close),
/// idle/header/body deadlines, drain cooperation.
async fn connection_loop(ctx: &ConnCtx<'_>) -> io::Result<()> {
    let cfg = ctx.config;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Absolute per-request-head deadline; armed at the first header
    // byte, cancelled (by replacement) when the head completes.
    let mut head_timer = TimerGuard::unarmed();
    loop {
        match parse_request(&buf, &cfg.limits) {
            Parse::Complete(req, consumed) => {
                head_timer = TimerGuard::unarmed();
                buf.drain(..consumed);
                // Drain cooperation: once shutdown starts, answer this
                // request but tell the client the connection is done.
                let keep = req.keep_alive() && !ctx.stopping.load(Ordering::Acquire);

                // Admission, stage 2: bounded in-flight requests. Over
                // the cap the request is shed *before* the handler
                // runs — a 503 costs one buffered write, and
                // `Retry-After` steers well-behaved clients into
                // backoff instead of a tight retry loop.
                if cfg.max_inflight > 0
                    && ctx.inflight.fetch_add(1, Ordering::AcqRel) >= cfg.max_inflight
                {
                    ctx.inflight.fetch_sub(1, Ordering::AcqRel);
                    COUNTERS.requests_shed.inc();
                    emit(EventKind::RequestShed, 0);
                    let resp = Response::new(503).header("Retry-After", "1");
                    ctx.stream.write_all_async(&resp.to_bytes(keep)).await?;
                    if !keep {
                        return Ok(());
                    }
                    continue;
                }
                if cfg.max_inflight == 0 {
                    ctx.inflight.fetch_add(1, Ordering::AcqRel);
                }
                let _inflight = InflightGuard(ctx.inflight);

                // Panic isolation: a panicking handler must cost one
                // connection, never a worker thread. The hook already
                // printed the panic message; the client gets a clean
                // 500 and a close (the connection's request state is
                // suspect after a half-run handler).
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if should_inject(FaultSite::HandlerPanic) {
                        panic!("lwt-chaos: injected handler panic");
                    }
                    (ctx.handler)(&req)
                }));
                match result {
                    Ok(resp) => {
                        ctx.stream.write_all_async(&resp.to_bytes(keep)).await?;
                        if should_inject(FaultSite::NetConnKill) {
                            // Chaos: drop the connection right after a
                            // complete response — the client sees a
                            // byte-correct reply then a close.
                            ctx.stream.close_wake();
                            return Ok(());
                        }
                        if !keep {
                            return Ok(());
                        }
                    }
                    Err(_) => {
                        COUNTERS.handler_panics.inc();
                        emit(EventKind::HandlerPanic, 0);
                        write_final(ctx.stream, &Response::new(500)).await?;
                        return Ok(());
                    }
                }
            }
            Parse::Partial => {
                if should_inject(FaultSite::NetReadStall) {
                    // Chaos: stretch this read across scheduler turns,
                    // as a slow or stalled peer would.
                    for _ in 0..8 {
                        yield_task().await;
                    }
                }
                let n = if buf.is_empty() {
                    // Between requests: idle deadline; expiry closes
                    // quietly — nothing was asked, nothing is owed.
                    let mut idle = TimerGuard::unarmed();
                    if cfg.idle_timeout_ms > 0 {
                        idle.arm(cfg.idle_timeout_ms);
                    }
                    match ctx
                        .stream
                        .read_async_deadline(&mut chunk, idle.entry())
                        .await
                    {
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::TimedOut => return Ok(()),
                        Err(e) => return Err(e),
                    }
                } else if find_head_end(&buf).is_none() {
                    // Mid-head: the absolute header deadline (armed
                    // once, spanning every read of this head) expires
                    // into a 408 — the slow-loris answer.
                    if cfg.header_timeout_ms > 0 {
                        head_timer.arm(cfg.header_timeout_ms);
                    }
                    match ctx
                        .stream
                        .read_async_deadline(&mut chunk, head_timer.entry())
                        .await
                    {
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                            let _ = write_final(ctx.stream, &Response::new(408)).await;
                            return Ok(());
                        }
                        Err(e) => return Err(e),
                    }
                } else {
                    // Head complete, awaiting body bytes: the
                    // per-stream read timeout (set at accept) bounds
                    // each read.
                    match ctx.stream.read_async(&mut chunk).await {
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                            let _ = write_final(ctx.stream, &Response::new(408)).await;
                            return Ok(());
                        }
                        Err(e) => return Err(e),
                    }
                };
                if n == 0 {
                    // Clean EOF between requests; mid-request EOF just
                    // ends the task (nobody is left to read an error).
                    return Ok(());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Parse::Reject(status) => {
                write_final(ctx.stream, &Response::new(status)).await?;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &[u8]) -> Parse {
        parse_request(raw, &Limits::default())
    }

    #[test]
    fn parses_a_get_with_headers() {
        let raw = b"GET /hello?x=1 HTTP/1.1\r\nHost: a\r\nX-Trace: 7\r\n\r\n";
        match req(raw) {
            Parse::Complete(r, consumed) => {
                assert_eq!(consumed, raw.len());
                assert_eq!(r.method, "GET");
                assert_eq!(r.target, "/hello?x=1");
                assert_eq!(r.header("x-trace"), Some("7"));
                assert!(r.keep_alive());
                assert!(r.body.is_empty());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn body_follows_content_length_and_pipelines() {
        let raw = b"POST /e HTTP/1.1\r\nContent-Length: 4\r\n\r\nwxyzGET / HTTP/1.1\r\n\r\n";
        match req(raw) {
            Parse::Complete(r, consumed) => {
                assert_eq!(r.body, b"wxyz");
                // Second pipelined request still in the buffer.
                match parse_request(&raw[consumed..], &Limits::default()) {
                    Parse::Complete(r2, _) => assert_eq!(r2.target, "/"),
                    other => panic!("expected Complete, got {other:?}"),
                }
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn partial_until_blank_line_and_full_body() {
        assert!(matches!(req(b"GET / HTTP/1.1\r\nHost:"), Parse::Partial));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort"),
            Parse::Partial
        ));
    }

    #[test]
    fn connection_close_and_http10_default() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        match req(raw) {
            Parse::Complete(r, _) => assert!(!r.keep_alive()),
            other => panic!("{other:?}"),
        }
        match req(b"GET / HTTP/1.0\r\n\r\n") {
            Parse::Complete(r, _) => assert!(!r.keep_alive()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limits_are_enforced() {
        // Header block too large: reject even before the blank line.
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', 9000));
        assert!(matches!(req(&big), Parse::Reject(431)));

        // Too many header lines.
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            many.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert!(matches!(req(&many), Parse::Reject(431)));

        // Declared body over the cap.
        let huge = b"POST / HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n";
        assert!(matches!(req(huge), Parse::Reject(413)));
    }

    #[test]
    fn malformed_requests_are_400() {
        assert!(matches!(req(b"BROKEN\r\n\r\n"), Parse::Reject(400)));
        assert!(matches!(req(b"GET / HTTP/9.9\r\n\r\n"), Parse::Reject(400)));
        assert!(matches!(
            req(b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n"),
            Parse::Reject(400)
        ));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Parse::Reject(400)
        ));
    }

    #[test]
    fn response_wire_format() {
        let bytes = Response::ok("hi").header("X-K", "v").to_bytes(true);
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("X-K: v\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.ends_with("\r\n\r\nhi"));
        let closed = String::from_utf8(Response::new(404).to_bytes(false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"));
        assert!(closed.contains("404 Not Found"));
    }
}
