//! Nonblocking TCP sockets whose waits suspend the calling work unit
//! instead of wedging its worker.
//!
//! Both types follow the same discipline (DESIGN.md §15): the socket
//! lives in nonblocking mode from birth, every operation is tried
//! optimistically, and a `WouldBlock` routes the caller onto the
//! reactor — a stackful ULT relax-loops (yielding its worker to other
//! units), an async task parks its waker and returns `Pending`. The
//! same `TcpStream` therefore serves both spawn paths of the GLT API:
//! `Glt::ult_create` closures call the plain methods, `Glt::
//! spawn_async` futures call the `*_async` methods.

use std::io::{self, Read as _, Write as _};
use std::net::{self, SocketAddr, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::task::{Context, Poll};

use lwt_chaos::{should_inject, FaultSite};

use crate::reactor::{closed_error, reactor, Dir, Registration};

fn would_block() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, "lwt-chaos: injected EAGAIN")
}

/// Injected short write: cut the buffer to a nonempty prefix, exactly
/// as a full kernel send buffer would.
fn chaos_cut(len: usize) -> usize {
    if len > 1 && should_inject(FaultSite::NetPartialWrite) {
        len.div_ceil(2)
    } else {
        len
    }
}

/// Synchronous (ULT / external thread) retry loop: try `op`, consume
/// the readiness edge on `WouldBlock`, wait, repeat. See DESIGN.md §15
/// for why the clear is followed by one immediate retry.
fn sync_op<T>(
    reg: &Registration,
    dir: Dir,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    loop {
        if reg.is_closed() {
            return Err(closed_error());
        }
        let injected = should_inject(FaultSite::NetSpuriousEagain);
        let first = if injected { Err(would_block()) } else { op() };
        match first {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !injected {
                    // A real EAGAIN consumes the kernel edge; the
                    // re-check + retry close the window where an edge
                    // landed between the failed syscall and the clear.
                    if reg.clear_ready(dir) {
                        continue;
                    }
                    match op() {
                        Err(e2) if e2.kind() == io::ErrorKind::WouldBlock => {}
                        done => return done,
                    }
                }
                // Injected EAGAINs leave the ready flag up, so this
                // wait returns immediately: a delay, never a stall.
                reg.wait_ult(dir)?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            done => return done,
        }
    }
}

/// Async retry loop: the poll-flavored twin of [`sync_op`].
fn poll_op<T>(
    reg: &Registration,
    dir: Dir,
    cx: &mut Context<'_>,
    mut op: impl FnMut() -> io::Result<T>,
) -> Poll<io::Result<T>> {
    loop {
        if reg.is_closed() {
            return Poll::Ready(Err(closed_error()));
        }
        let injected = should_inject(FaultSite::NetSpuriousEagain);
        let first = if injected { Err(would_block()) } else { op() };
        match first {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !injected {
                    if reg.clear_ready(dir) {
                        continue;
                    }
                    match op() {
                        Err(e2) if e2.kind() == io::ErrorKind::WouldBlock => {}
                        done => return Poll::Ready(done),
                    }
                }
                match reg.poll_ready(dir, cx) {
                    Poll::Ready(Ok(())) => {}
                    Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                    Poll::Pending => return Poll::Pending,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            done => return Poll::Ready(done),
        }
    }
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

/// A TCP listener registered with the reactor: `accept` suspends the
/// calling work unit until a connection is pending (it never blocks
/// the worker thread).
///
/// # Examples
///
/// A one-connection echo server, runnable from any context (here the
/// test's own thread; under a runtime, put the same code in a
/// `Glt::ult_create` closure):
///
/// ```
/// use lwt_net::TcpListener;
///
/// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
/// let addr = listener.local_addr().unwrap();
///
/// let client = std::thread::spawn(move || {
///     use std::io::{Read, Write};
///     let mut s = std::net::TcpStream::connect(addr).unwrap();
///     s.write_all(b"ping").unwrap();
///     let mut buf = [0u8; 4];
///     s.read_exact(&mut buf).unwrap();
///     buf
/// });
///
/// // The echo loop: read until EOF, write every byte back.
/// let (stream, _peer) = listener.accept().unwrap();
/// let mut buf = [0u8; 64];
/// let n = stream.read(&mut buf).unwrap();
/// stream.write_all(&buf[..n]).unwrap();
///
/// assert_eq!(&client.join().unwrap(), b"ping");
/// ```
pub struct TcpListener {
    inner: net::TcpListener,
    reg: Arc<Registration>,
}

impl TcpListener {
    /// Bind to `addr` (standard `ToSocketAddrs` forms; port 0 picks a
    /// free port) and register with the reactor. Starts the reactor
    /// driver on first use anywhere in the process.
    ///
    /// ```
    /// let listener = lwt_net::TcpListener::bind("127.0.0.1:0").unwrap();
    /// assert_ne!(listener.local_addr().unwrap().port(), 0);
    /// ```
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let reg = reactor().register(inner.as_raw_fd())?;
        Ok(TcpListener { inner, reg })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accept one connection, suspending the calling work unit until
    /// one is pending. Returns [`closed_error`]-flavored
    /// `ErrorKind::NotConnected` after [`shutdown`](Self::shutdown) —
    /// including for waits already in flight when the shutdown lands.
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, peer) = sync_op(&self.reg, Dir::Read, || self.inner.accept())?;
        Ok((TcpStream::from_std(stream)?, peer))
    }

    /// Poll-flavored [`accept`](Self::accept) for manual future
    /// implementations.
    pub fn poll_accept(&self, cx: &mut Context<'_>) -> Poll<io::Result<(TcpStream, SocketAddr)>> {
        match poll_op(&self.reg, Dir::Read, cx, || self.inner.accept()) {
            Poll::Ready(Ok((stream, peer))) => {
                Poll::Ready(TcpStream::from_std(stream).map(|s| (s, peer)))
            }
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }

    /// Async [`accept`](Self::accept) for `Glt::spawn_async` tasks:
    /// returns `Pending` until the reactor observes a pending
    /// connection, rewaking through the task's waker.
    pub async fn accept_async(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| self.poll_accept(cx)).await
    }

    /// Shut the listener down: every blocked or future `accept`
    /// returns `ErrorKind::NotConnected` instead of hanging, and the
    /// socket leaves the reactor's interest set. Idempotent.
    pub fn shutdown(&self) {
        reactor().deregister(&self.reg);
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        reactor().deregister(&self.reg);
    }
}

impl std::fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListener")
            .field("addr", &self.inner.local_addr().ok())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// TcpStream
// ---------------------------------------------------------------------------

/// A nonblocking TCP stream registered with the reactor. Reads and
/// writes suspend the calling work unit (never its worker thread)
/// until the kernel reports readiness.
pub struct TcpStream {
    inner: net::TcpStream,
    reg: Arc<Registration>,
}

impl TcpStream {
    /// Connect to `addr` and register with the reactor.
    ///
    /// The connect itself uses the std blocking path — on the loopback
    /// and datacenter round trips this stack targets it completes in
    /// one syscall — and the socket is nonblocking from then on.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        TcpStream::from_std(net::TcpStream::connect(addr)?)
    }

    /// Adopt an already-connected std stream (accepted or connected
    /// elsewhere), flipping it to nonblocking and registering it.
    pub fn from_std(inner: net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        let reg = reactor().register(inner.as_raw_fd())?;
        Ok(TcpStream { inner, reg })
    }

    /// Read into `buf`, suspending until at least one byte (or EOF,
    /// returning `Ok(0)`) is available.
    pub fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        sync_op(&self.reg, Dir::Read, || (&self.inner).read(buf))
    }

    /// Read exactly `buf.len()` bytes; `ErrorKind::UnexpectedEof` if
    /// the peer closes first.
    pub fn read_exact(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.read(&mut buf[filled..])? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-message",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    /// Write from `buf`, suspending until the kernel accepts at least
    /// one byte. May write fewer than `buf.len()` bytes — both because
    /// the send buffer filled and under injected `NetPartialWrite`
    /// chaos — so most callers want [`write_all`](Self::write_all).
    pub fn write(&self, buf: &[u8]) -> io::Result<usize> {
        sync_op(&self.reg, Dir::Write, || {
            (&self.inner).write(&buf[..chaos_cut(buf.len())])
        })
    }

    /// Write the whole buffer, resuming from every short write.
    pub fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let mut sent = 0;
        while sent < buf.len() {
            match self.write(&buf[sent..])? {
                0 => return Err(io::ErrorKind::WriteZero.into()),
                n => sent += n,
            }
        }
        Ok(())
    }

    /// Poll-flavored [`read`](Self::read).
    pub fn poll_read(&self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        poll_op(&self.reg, Dir::Read, cx, || (&self.inner).read(buf))
    }

    /// Poll-flavored [`write`](Self::write) (same short-write caveat).
    pub fn poll_write(&self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        poll_op(&self.reg, Dir::Write, cx, || {
            (&self.inner).write(&buf[..chaos_cut(buf.len())])
        })
    }

    /// Async [`read`](Self::read) for `spawn_async` tasks.
    pub async fn read_async(&self, buf: &mut [u8]) -> io::Result<usize> {
        std::future::poll_fn(move |cx| self.poll_read(cx, &mut *buf)).await
    }

    /// Async [`read_exact`](Self::read_exact).
    pub async fn read_exact_async(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.read_async(&mut buf[filled..]).await? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-message",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    /// Async [`write`](Self::write) (short writes possible).
    pub async fn write_async(&self, buf: &[u8]) -> io::Result<usize> {
        std::future::poll_fn(move |cx| self.poll_write(cx, buf)).await
    }

    /// Async [`write_all`](Self::write_all).
    pub async fn write_all_async(&self, buf: &[u8]) -> io::Result<()> {
        let mut sent = 0;
        while sent < buf.len() {
            match self.write_async(&buf[sent..]).await? {
                0 => return Err(io::ErrorKind::WriteZero.into()),
                n => sent += n,
            }
        }
        Ok(())
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Disable Nagle's algorithm (on by default for the serving
    /// stack's request/response pattern — call with `false` to restore
    /// coalescing).
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// Half- or full-close via the kernel (`shutdown(2)`). Unlike
    /// [`close_wake`-style shutdown](crate::http::ServerHandle), this
    /// is about signaling the peer; local waiters wake through the
    /// resulting `EPOLLHUP`/`EPOLLRDHUP` edge.
    pub fn shutdown(&self, how: net::Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }

    /// Force every current and future operation on this stream to
    /// return `ErrorKind::NotConnected`, waking blocked waiters. Used
    /// by the HTTP server's shutdown to unstick keep-alive readers.
    pub fn close_wake(&self) {
        self.reg.close_wake();
    }

    pub(crate) fn registration(&self) -> &Arc<Registration> {
        &self.reg
    }
}

impl Drop for TcpStream {
    fn drop(&mut self) {
        reactor().deregister(&self.reg);
    }
}

impl std::fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStream")
            .field("local", &self.inner.local_addr().ok())
            .field("peer", &self.inner.peer_addr().ok())
            .finish_non_exhaustive()
    }
}
