//! Nonblocking TCP sockets whose waits suspend the calling work unit
//! instead of wedging its worker.
//!
//! Both types follow the same discipline (DESIGN.md §15): the socket
//! lives in nonblocking mode from birth, every operation is tried
//! optimistically, and a `WouldBlock` routes the caller onto the
//! reactor — a stackful ULT relax-loops (yielding its worker to other
//! units), an async task parks its waker and returns `Pending`. The
//! same `TcpStream` therefore serves both spawn paths of the GLT API:
//! `Glt::ult_create` closures call the plain methods, `Glt::
//! spawn_async` futures call the `*_async` methods.

use std::io::{self, Read as _, Write as _};
use std::net::{self, SocketAddr, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;

use lwt_chaos::{should_inject, FaultSite};
use lwt_metrics::COUNTERS;
use lwt_sched::TimerEntry;

use crate::reactor::{closed_error, reactor, timeout_error, Dir, Registration};

fn would_block() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, "lwt-chaos: injected EAGAIN")
}

/// An armed wheel entry that cancels itself when the guarded I/O op
/// finishes first — the overwhelmingly common case. Cancelling a
/// fired or already-cancelled entry is a harmless no-op.
pub(crate) struct TimerGuard(Option<Arc<TimerEntry>>);

impl TimerGuard {
    pub(crate) fn unarmed() -> TimerGuard {
        TimerGuard(None)
    }

    /// Arm `delay_ms` from now on first call; later calls return the
    /// same entry (the deadline covers the whole op, not each retry —
    /// the HTTP server leans on this for its absolute header
    /// deadline, re-calling `arm` across reads of one request head).
    pub(crate) fn arm(&mut self, delay_ms: u64) -> &TimerEntry {
        self.0
            .get_or_insert_with(|| reactor().arm_timer_ms(delay_ms))
    }

    pub(crate) fn entry(&self) -> Option<&TimerEntry> {
        self.0.as_deref()
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some(t) = &self.0 {
            t.cancel();
        }
    }
}

/// `None` → 0 (wait forever); `Some(d)` → `d` in ms, rounded up to
/// the 1 ms wheel tick so a nonzero timeout is never silently
/// dropped.
fn timeout_to_ms(timeout: Option<Duration>) -> u64 {
    timeout.map_or(0, |d| {
        u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1)
    })
}

fn ms_to_timeout(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// Per-op timer for the async wrappers: armed up front when a timeout
/// is configured (the future owns it across polls), unarmed otherwise.
fn op_timer(ms: u64) -> TimerGuard {
    let mut timer = TimerGuard::unarmed();
    if ms > 0 {
        timer.arm(ms);
    }
    timer
}

/// Injected short write: cut the buffer to a nonempty prefix, exactly
/// as a full kernel send buffer would.
fn chaos_cut(len: usize) -> usize {
    if len > 1 && should_inject(FaultSite::NetPartialWrite) {
        len.div_ceil(2)
    } else {
        len
    }
}

/// Synchronous (ULT / external thread) retry loop: try `op`, consume
/// the readiness edge on `WouldBlock`, wait, repeat. See DESIGN.md §15
/// for why the clear is followed by one immediate retry. A nonzero
/// `timeout_ms` arms a wheel deadline on the *first* `WouldBlock` —
/// the ready fast path never touches the wheel — after which the op
/// fails with `TimedOut` once the wheel fires it.
fn sync_op<T>(
    reg: &Registration,
    dir: Dir,
    timeout_ms: u64,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut timer = TimerGuard::unarmed();
    loop {
        if reg.is_closed() {
            return Err(closed_error());
        }
        if let Some(t) = timer.entry() {
            if t.has_fired() {
                COUNTERS.io_timeouts.inc();
                return Err(timeout_error());
            }
        }
        let injected = should_inject(FaultSite::NetSpuriousEagain);
        let first = if injected { Err(would_block()) } else { op() };
        match first {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !injected {
                    // A real EAGAIN consumes the kernel edge; the
                    // re-check + retry close the window where an edge
                    // landed between the failed syscall and the clear.
                    if reg.clear_ready(dir) {
                        continue;
                    }
                    match op() {
                        Err(e2) if e2.kind() == io::ErrorKind::WouldBlock => {}
                        done => return done,
                    }
                }
                if timeout_ms > 0 {
                    timer.arm(timeout_ms);
                }
                // Injected EAGAINs leave the ready flag up, so this
                // wait returns immediately: a delay, never a stall.
                reg.wait_ult_deadline(dir, timer.entry())?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            done => return done,
        }
    }
}

/// Async retry loop: the poll-flavored twin of [`sync_op`]. The
/// optional `deadline` is owned by the calling future (it must span
/// every poll of one logical op, so it cannot live here).
fn poll_op<T>(
    reg: &Registration,
    dir: Dir,
    cx: &mut Context<'_>,
    deadline: Option<&TimerEntry>,
    mut op: impl FnMut() -> io::Result<T>,
) -> Poll<io::Result<T>> {
    loop {
        if reg.is_closed() {
            return Poll::Ready(Err(closed_error()));
        }
        let injected = should_inject(FaultSite::NetSpuriousEagain);
        let first = if injected { Err(would_block()) } else { op() };
        match first {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !injected {
                    if reg.clear_ready(dir) {
                        continue;
                    }
                    match op() {
                        Err(e2) if e2.kind() == io::ErrorKind::WouldBlock => {}
                        done => return Poll::Ready(done),
                    }
                }
                match reg.poll_ready_deadline(dir, cx, deadline) {
                    Poll::Ready(Ok(())) => {}
                    Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                    Poll::Pending => return Poll::Pending,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            done => return Poll::Ready(done),
        }
    }
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

/// A TCP listener registered with the reactor: `accept` suspends the
/// calling work unit until a connection is pending (it never blocks
/// the worker thread).
///
/// # Examples
///
/// A one-connection echo server, runnable from any context (here the
/// test's own thread; under a runtime, put the same code in a
/// `Glt::ult_create` closure):
///
/// ```
/// use lwt_net::TcpListener;
///
/// let listener = TcpListener::bind("127.0.0.1:0").unwrap();
/// let addr = listener.local_addr().unwrap();
///
/// let client = std::thread::spawn(move || {
///     use std::io::{Read, Write};
///     let mut s = std::net::TcpStream::connect(addr).unwrap();
///     s.write_all(b"ping").unwrap();
///     let mut buf = [0u8; 4];
///     s.read_exact(&mut buf).unwrap();
///     buf
/// });
///
/// // The echo loop: read until EOF, write every byte back.
/// let (stream, _peer) = listener.accept().unwrap();
/// let mut buf = [0u8; 64];
/// let n = stream.read(&mut buf).unwrap();
/// stream.write_all(&buf[..n]).unwrap();
///
/// assert_eq!(&client.join().unwrap(), b"ping");
/// ```
pub struct TcpListener {
    inner: net::TcpListener,
    reg: Arc<Registration>,
}

impl TcpListener {
    /// Bind to `addr` (standard `ToSocketAddrs` forms; port 0 picks a
    /// free port) and register with the reactor. Starts the reactor
    /// driver on first use anywhere in the process.
    ///
    /// ```
    /// let listener = lwt_net::TcpListener::bind("127.0.0.1:0").unwrap();
    /// assert_ne!(listener.local_addr().unwrap().port(), 0);
    /// ```
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let reg = reactor().register(inner.as_raw_fd())?;
        Ok(TcpListener { inner, reg })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accept one connection, suspending the calling work unit until
    /// one is pending. Returns [`closed_error`]-flavored
    /// `ErrorKind::NotConnected` after [`shutdown`](Self::shutdown) —
    /// including for waits already in flight when the shutdown lands.
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, peer) = sync_op(&self.reg, Dir::Read, 0, || self.inner.accept())?;
        Ok((TcpStream::from_std(stream)?, peer))
    }

    /// Poll-flavored [`accept`](Self::accept) for manual future
    /// implementations.
    pub fn poll_accept(&self, cx: &mut Context<'_>) -> Poll<io::Result<(TcpStream, SocketAddr)>> {
        match poll_op(&self.reg, Dir::Read, cx, None, || self.inner.accept()) {
            Poll::Ready(Ok((stream, peer))) => {
                Poll::Ready(TcpStream::from_std(stream).map(|s| (s, peer)))
            }
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }

    /// Async [`accept`](Self::accept) for `Glt::spawn_async` tasks:
    /// returns `Pending` until the reactor observes a pending
    /// connection, rewaking through the task's waker.
    pub async fn accept_async(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| self.poll_accept(cx)).await
    }

    /// Shut the listener down: every blocked or future `accept`
    /// returns `ErrorKind::NotConnected` instead of hanging, and the
    /// socket leaves the reactor's interest set. Idempotent.
    pub fn shutdown(&self) {
        reactor().deregister(&self.reg);
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        reactor().deregister(&self.reg);
    }
}

impl std::fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListener")
            .field("addr", &self.inner.local_addr().ok())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// TcpStream
// ---------------------------------------------------------------------------

/// A nonblocking TCP stream registered with the reactor. Reads and
/// writes suspend the calling work unit (never its worker thread)
/// until the kernel reports readiness.
///
/// ## Deadlines
///
/// [`set_read_timeout`](Self::set_read_timeout) /
/// [`set_write_timeout`](Self::set_write_timeout) bound every
/// *individual* read/write (sync and async flavors alike) by arming
/// an entry on the process timer wheel: when the wheel fires first,
/// the op fails with `ErrorKind::TimedOut` and the socket stays
/// usable. Composite helpers (`read_exact`, `write_all`) apply the
/// timeout per underlying op, so their total wall time is bounded by
/// `timeout × chunks`, matching `std::net` semantics. The fast path
/// (data already available) never touches the wheel.
pub struct TcpStream {
    inner: net::TcpStream,
    reg: Arc<Registration>,
    /// Per-op deadlines in ms; 0 = wait forever (the default).
    read_timeout_ms: AtomicU64,
    write_timeout_ms: AtomicU64,
}

impl TcpStream {
    /// Connect to `addr` and register with the reactor.
    ///
    /// The connect itself uses the std blocking path — on the loopback
    /// and datacenter round trips this stack targets it completes in
    /// one syscall — and the socket is nonblocking from then on.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        TcpStream::from_std(net::TcpStream::connect(addr)?)
    }

    /// Adopt an already-connected std stream (accepted or connected
    /// elsewhere), flipping it to nonblocking and registering it.
    pub fn from_std(inner: net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        let reg = reactor().register(inner.as_raw_fd())?;
        Ok(TcpStream {
            inner,
            reg,
            read_timeout_ms: AtomicU64::new(0),
            write_timeout_ms: AtomicU64::new(0),
        })
    }

    /// Bound every subsequent read by `timeout`: once it elapses with
    /// the socket still dry, the read fails with
    /// `ErrorKind::TimedOut`. `None` (the default) waits forever;
    /// sub-millisecond timeouts round up to 1 ms (the wheel tick).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) {
        self.read_timeout_ms
            .store(timeout_to_ms(timeout), Ordering::Relaxed);
    }

    /// Bound every subsequent write by `timeout` (see
    /// [`set_read_timeout`](Self::set_read_timeout)).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) {
        self.write_timeout_ms
            .store(timeout_to_ms(timeout), Ordering::Relaxed);
    }

    /// The configured read deadline, if any.
    #[must_use]
    pub fn read_timeout(&self) -> Option<Duration> {
        ms_to_timeout(self.read_timeout_ms.load(Ordering::Relaxed))
    }

    /// The configured write deadline, if any.
    #[must_use]
    pub fn write_timeout(&self) -> Option<Duration> {
        ms_to_timeout(self.write_timeout_ms.load(Ordering::Relaxed))
    }

    /// Read into `buf`, suspending until at least one byte (or EOF,
    /// returning `Ok(0)`) is available — bounded by the configured
    /// read timeout, if any.
    pub fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        let ms = self.read_timeout_ms.load(Ordering::Relaxed);
        sync_op(&self.reg, Dir::Read, ms, || (&self.inner).read(buf))
    }

    /// Read exactly `buf.len()` bytes; `ErrorKind::UnexpectedEof` if
    /// the peer closes first.
    pub fn read_exact(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.read(&mut buf[filled..])? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-message",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    /// Write from `buf`, suspending until the kernel accepts at least
    /// one byte. May write fewer than `buf.len()` bytes — both because
    /// the send buffer filled and under injected `NetPartialWrite`
    /// chaos — so most callers want [`write_all`](Self::write_all).
    pub fn write(&self, buf: &[u8]) -> io::Result<usize> {
        let ms = self.write_timeout_ms.load(Ordering::Relaxed);
        sync_op(&self.reg, Dir::Write, ms, || {
            (&self.inner).write(&buf[..chaos_cut(buf.len())])
        })
    }

    /// Write the whole buffer, resuming from every short write.
    pub fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let mut sent = 0;
        while sent < buf.len() {
            match self.write(&buf[sent..])? {
                0 => return Err(io::ErrorKind::WriteZero.into()),
                n => sent += n,
            }
        }
        Ok(())
    }

    /// Poll-flavored [`read`](Self::read). Poll methods carry no
    /// deadline — a per-poll call cannot own the wheel entry that must
    /// span the whole logical op. Manual futures that want one should
    /// hold a [`TimerGuard`]-style armed entry themselves; the `async`
    /// wrappers below do exactly that.
    pub fn poll_read(&self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        self.poll_read_deadline(cx, buf, None)
    }

    /// Poll-flavored [`write`](Self::write) (same short-write caveat).
    pub fn poll_write(&self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        self.poll_write_deadline(cx, buf, None)
    }

    /// [`poll_read`](Self::poll_read) bounded by an armed wheel entry
    /// owned by the caller (it must span every poll of the op).
    pub(crate) fn poll_read_deadline(
        &self,
        cx: &mut Context<'_>,
        buf: &mut [u8],
        deadline: Option<&TimerEntry>,
    ) -> Poll<io::Result<usize>> {
        poll_op(&self.reg, Dir::Read, cx, deadline, || {
            (&self.inner).read(buf)
        })
    }

    /// [`poll_write`](Self::poll_write) with a caller-owned deadline.
    pub(crate) fn poll_write_deadline(
        &self,
        cx: &mut Context<'_>,
        buf: &[u8],
        deadline: Option<&TimerEntry>,
    ) -> Poll<io::Result<usize>> {
        poll_op(&self.reg, Dir::Write, cx, deadline, || {
            (&self.inner).write(&buf[..chaos_cut(buf.len())])
        })
    }

    /// Async [`read`](Self::read) for `spawn_async` tasks — bounded by
    /// the configured read timeout, if any (the future owns the armed
    /// entry for the duration of the op; dropping the future cancels
    /// it).
    pub async fn read_async(&self, buf: &mut [u8]) -> io::Result<usize> {
        let timer = op_timer(self.read_timeout_ms.load(Ordering::Relaxed));
        std::future::poll_fn(move |cx| self.poll_read_deadline(cx, &mut *buf, timer.entry())).await
    }

    /// [`read_async`](Self::read_async) bounded by a caller-owned
    /// armed entry *instead of* the stream's own read timeout — the
    /// HTTP server's absolute header/idle deadlines use this.
    pub(crate) async fn read_async_deadline(
        &self,
        buf: &mut [u8],
        deadline: Option<&TimerEntry>,
    ) -> io::Result<usize> {
        std::future::poll_fn(move |cx| self.poll_read_deadline(cx, &mut *buf, deadline)).await
    }

    /// Async [`read_exact`](Self::read_exact).
    pub async fn read_exact_async(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.read_async(&mut buf[filled..]).await? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-message",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    /// Async [`write`](Self::write) (short writes possible) — bounded
    /// by the configured write timeout, if any.
    pub async fn write_async(&self, buf: &[u8]) -> io::Result<usize> {
        let timer = op_timer(self.write_timeout_ms.load(Ordering::Relaxed));
        std::future::poll_fn(move |cx| self.poll_write_deadline(cx, buf, timer.entry())).await
    }

    /// Async [`write_all`](Self::write_all).
    pub async fn write_all_async(&self, buf: &[u8]) -> io::Result<()> {
        let mut sent = 0;
        while sent < buf.len() {
            match self.write_async(&buf[sent..]).await? {
                0 => return Err(io::ErrorKind::WriteZero.into()),
                n => sent += n,
            }
        }
        Ok(())
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Disable Nagle's algorithm (on by default for the serving
    /// stack's request/response pattern — call with `false` to restore
    /// coalescing).
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// Half- or full-close via the kernel (`shutdown(2)`). Unlike
    /// [`close_wake`-style shutdown](crate::http::ServerHandle), this
    /// is about signaling the peer; local waiters wake through the
    /// resulting `EPOLLHUP`/`EPOLLRDHUP` edge.
    pub fn shutdown(&self, how: net::Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }

    /// Force every current and future operation on this stream to
    /// return `ErrorKind::NotConnected`, waking blocked waiters. Used
    /// by the HTTP server's shutdown to unstick keep-alive readers.
    pub fn close_wake(&self) {
        self.reg.close_wake();
    }

    pub(crate) fn registration(&self) -> &Arc<Registration> {
        &self.reg
    }
}

impl Drop for TcpStream {
    fn drop(&mut self) {
        reactor().deregister(&self.reg);
    }
}

impl std::fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStream")
            .field("local", &self.inner.local_addr().ok())
            .field("peer", &self.inner.peer_addr().ok())
            .finish_non_exhaustive()
    }
}
