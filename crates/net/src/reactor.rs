//! The epoll reactor: one process-global driver that turns kernel
//! readiness edges into work-unit wakes.
//!
//! Full contract in DESIGN.md §15. The load-bearing pieces:
//!
//! * **Edge-triggered, registered once.** Every socket is added to the
//!   epoll set at registration with `EPOLLIN|EPOLLOUT|EPOLLRDHUP|
//!   EPOLLET` and never modified again — no `epoll_ctl` on the hot
//!   path. An edge is *consumed* the moment the kernel reports it, so
//!   delivery must never be dropped: dispatch always records readiness
//!   in the registration's per-direction `ready` flag before doing
//!   anything else.
//! * **Try first, then wait.** Both direction flags start `true`; I/O
//!   paths attempt the syscall optimistically and only fall back to
//!   waiting after observing `WouldBlock` (see `Registration::
//!   clear_ready` for the re-check that closes the clear/edge race).
//! * **Dual wait path.** A stackful ULT waits by relax-looping on the
//!   `ready` flag — yielding its worker to other units via
//!   `lwt_core::yield_unit`, registered with the stall watchdog, the
//!   same discipline as `lwt_sync::Event::wait`. An async task parks
//!   its waker in the registration and returns `Pending`; the driver's
//!   `wake()` re-enqueues it through the `TaskCell` → `post_task` →
//!   `ParkGroup::notify` chain the async bridge already guarantees.
//! * **Two pollers, one epoll set.** A dedicated driver thread blocks
//!   in `epoll_wait`, and idle workers poll the same set with a zero
//!   timeout through the `lwt_sched::io_poll` hook (behind a try-lock)
//!   before parking. The kernel hands each edge to exactly one
//!   concurrent waiter, so double delivery cannot happen; double
//!   *observation* of the flag is harmless.
//! * **Zero-syscall wakes, wheel-driven sleeps.** The driver owns the
//!   process [`lwt_sched::TimerWheel`] (ticks = milliseconds since the
//!   reactor epoch) and sleeps exactly until the wheel's next
//!   deadline — indefinitely when nothing is armed. Arming an earlier
//!   deadline signals the eventfd registered in the epoll set, so the
//!   driver replans immediately instead of discovering the timer on a
//!   fixed tick. Idle workers advance the wheel too, so timers keep
//!   firing even if the driver thread is starved of CPU.
//! * **Chaos.** `NetDelayedReadiness` stashes an observed event for
//!   one dispatch turn (never drops it — ET edges are not redelivered)
//!   to widen the readiness/park race window; a non-empty stash forces
//!   the next sleep to a zero timeout so the delay stays one turn.

use std::collections::HashMap;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

use lwt_chaos::{block_enter, should_inject, BlockKind, FaultSite};
use lwt_metrics::{emit, EventKind, COUNTERS};
use lwt_sched::{TimerEntry, TimerWheel};
use lwt_sync::SpinLock;

use crate::sys;

/// Which half of a socket a wait concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dir {
    /// Readable (or accept-ready on a listener).
    Read = 0,
    /// Writable.
    Write = 1,
}

/// Events that make `Dir::Read` ready. `ERR`/`HUP` wake both sides so
/// waiters observe failures through their next syscall instead of
/// sleeping through them.
const READ_EVENTS: u32 = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP;
const WRITE_EVENTS: u32 = sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP;

/// Relax rounds before a ULT readiness wait gives up and lets the
/// caller retry its syscall anyway. This is the defense-in-depth
/// backstop against a spurious kernel edge consumed without a flag
/// having been raised (DESIGN.md §15 "degradation"): with
/// `AdaptiveRelax`'s 50µs naps this is roughly 80ms of patience per
/// round trip, the same order as `ParkGroup`'s park backstop.
const ULT_WAIT_BACKSTOP_ROUNDS: u32 = 2048;

/// One registered socket: the token-addressed rendezvous between the
/// driver (producer of readiness) and at most one waiter per
/// direction (consumer).
pub(crate) struct Registration {
    fd: RawFd,
    token: u64,
    read: DirState,
    write: DirState,
    closed: AtomicBool,
}

struct DirState {
    /// "The kernel has reported an edge not yet consumed by a
    /// `WouldBlock`." Starts true: try the syscall before waiting.
    ready: AtomicBool,
    /// Parked async waiter, if any. ULT waiters don't park here — they
    /// relax-loop on `ready` directly.
    waker: SpinLock<Option<Waker>>,
}

impl DirState {
    fn new() -> Self {
        DirState {
            ready: AtomicBool::new(true),
            waker: SpinLock::new(None),
        }
    }

    /// Driver side: raise the flag, then fire any parked waker. The
    /// flag store is `Release` and precedes the waker take, so a
    /// waiter woken by this call observes `ready == true`.
    fn deliver(&self, arg: u64) {
        COUNTERS.io_events.inc();
        emit(EventKind::IoReady, arg);
        self.ready.store(true, Ordering::Release);
        let parked = self.waker.lock().take();
        if let Some(w) = parked {
            COUNTERS.io_wakes.inc();
            w.wake();
        }
    }
}

impl Registration {
    fn dir(&self, dir: Dir) -> &DirState {
        match dir {
            Dir::Read => &self.read,
            Dir::Write => &self.write,
        }
    }

    /// `IoWait`/`IoReady` event payload: `(token << 1) | direction`.
    fn wait_arg(&self, dir: Dir) -> u64 {
        (self.token << 1) | dir as u64
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Mark the registration closed and wake every waiter (both
    /// directions). Waiters surface `closed_error()`; in-flight
    /// syscalls on the still-open fd finish normally.
    pub(crate) fn close_wake(&self) {
        self.closed.store(true, Ordering::Release);
        self.read.deliver(self.wait_arg(Dir::Read));
        self.write.deliver(self.wait_arg(Dir::Write));
    }

    /// Consume the readiness flag after a `WouldBlock`. Returns `true`
    /// if the flag was up again by the time it was cleared — the
    /// driver may have delivered an edge between the failing syscall
    /// and this clear, and that edge must not be lost, so the caller
    /// retries the syscall instead of waiting.
    pub(crate) fn clear_ready(&self, dir: Dir) -> bool {
        let st = self.dir(dir);
        st.ready.store(false, Ordering::Release);
        // Single racing producer (the driver) — a swap isn't needed,
        // but the re-read must happen after the clear.
        st.ready.load(Ordering::Acquire)
    }

    /// ULT / external-thread wait: relax until the direction is ready
    /// (or the registration closes, the backstop trips, or the
    /// optional armed `deadline` entry fires — the latter giving up
    /// with `TimedOut`). The relax yields the calling work unit when
    /// there is one, so the worker keeps running other units — the
    /// whole point of the reactor. The fired flag is checked every
    /// relax round — the waiter does not depend on any wake delivery
    /// beyond the flag flip, so a timeout can never be slept through.
    pub(crate) fn wait_ult_deadline(
        &self,
        dir: Dir,
        deadline: Option<&TimerEntry>,
    ) -> std::io::Result<()> {
        let st = self.dir(dir);
        if st.ready.load(Ordering::Acquire) {
            return Ok(());
        }
        emit(EventKind::IoWait, self.wait_arg(dir));
        COUNTERS.feb_blocks.inc(); // I/O parking rides the FEB wait discipline.
        let _guard = block_enter(BlockKind::Io, self.wait_arg(dir));
        let mut relax = lwt_sync::AdaptiveRelax::new();
        let mut rounds: u32 = 0;
        loop {
            if self.is_closed() {
                return Err(closed_error());
            }
            if st.ready.load(Ordering::Acquire) {
                COUNTERS.io_wakes.inc();
                COUNTERS.feb_wakes.inc();
                return Ok(());
            }
            if let Some(timer) = deadline {
                if timer.has_fired() {
                    COUNTERS.io_timeouts.inc();
                    return Err(timeout_error());
                }
            }
            if rounds >= ULT_WAIT_BACKSTOP_ROUNDS {
                // Spurious return; the caller's retry loop re-issues
                // the syscall and comes back here if still dry.
                return Ok(());
            }
            rounds += 1;
            lwt_core::yield_unit();
            relax.relax();
        }
    }

    /// Async wait: park the waker and report `Pending` unless the
    /// direction is (or concurrently became) ready. The park/re-check
    /// order closes the lost-wake race: the waker is published
    /// *before* the final flag read, and the driver raises the flag
    /// *before* taking the waker, so at least one side always sees the
    /// other.
    /// A fired `deadline` entry resolves the poll to `TimedOut`; a
    /// still-armed one gets the task's waker parked on it as well, so
    /// the wheel's fire re-polls the task just like an I/O edge would.
    pub(crate) fn poll_ready_deadline(
        &self,
        dir: Dir,
        cx: &mut Context<'_>,
        deadline: Option<&TimerEntry>,
    ) -> Poll<std::io::Result<()>> {
        let st = self.dir(dir);
        if self.is_closed() {
            return Poll::Ready(Err(closed_error()));
        }
        if st.ready.load(Ordering::Acquire) {
            return Poll::Ready(Ok(()));
        }
        if let Some(timer) = deadline {
            if timer.has_fired() {
                COUNTERS.io_timeouts.inc();
                return Poll::Ready(Err(timeout_error()));
            }
        }
        {
            let mut slot = st.waker.lock();
            match slot.as_mut() {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => *slot = Some(cx.waker().clone()),
            }
        }
        if let Some(timer) = deadline {
            // Park on the timer too; `register_waker` refusing means
            // the entry fired between the check above and here.
            if !timer.register_waker(cx.waker()) {
                COUNTERS.io_timeouts.inc();
                return Poll::Ready(Err(timeout_error()));
            }
        }
        if st.ready.load(Ordering::Acquire) {
            // Delivered between the first check and the park; the
            // parked waker may fire later as a spurious wake, which
            // the contract permits.
            return Poll::Ready(Ok(()));
        }
        if self.is_closed() {
            return Poll::Ready(Err(closed_error()));
        }
        emit(EventKind::IoWait, self.wait_arg(dir));
        Poll::Pending
    }
}

pub(crate) fn closed_error() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::NotConnected,
        "lwt-net: socket shut down",
    )
}

pub(crate) fn timeout_error() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        "lwt-net: I/O deadline elapsed",
    )
}

/// Events fetched per `epoll_wait` call (driver and idle polls).
const EVENT_BATCH: usize = 256;

/// A readiness observation deferred by `NetDelayedReadiness`: the
/// masks are dispatched at the head of the next turn.
struct Delayed {
    token: u64,
    read: bool,
    write: bool,
}

pub(crate) struct Reactor {
    epfd: i32,
    wake_fd: i32,
    registrations: SpinLock<HashMap<u64, Arc<Registration>>>,
    next_token: AtomicU64,
    /// Exclusive dispatch slot for idle-worker polls: `try_lock`
    /// semantics via `Mutex::try_lock` keep at most one worker in
    /// `epoll_wait(0)` while never blocking the idle path.
    idle_slot: Mutex<Box<[sys::EpollEvent]>>,
    delayed: SpinLock<Vec<Delayed>>,
    /// Every deadline in the process, in milliseconds-since-`epoch`
    /// ticks. The driver advances it each turn and sleeps until its
    /// next deadline; idle workers advance it from `io_poll`.
    wheel: TimerWheel,
    epoch: Instant,
    /// Absolute tick the driver plans to sleep until (`u64::MAX` when
    /// it blocks indefinitely). An armer that beats this plan signals
    /// the eventfd so the driver replans. Synchronization: the driver
    /// stores the plan *before* re-reading the wheel, and an armer
    /// inserts *before* loading the plan; the wheel's internal lock
    /// orders the two, so one side always sees the other.
    planned_wake: AtomicU64,
}

/// The wake eventfd's registration token (never allocated to sockets).
const WAKE_TOKEN: u64 = 0;

static REACTOR: OnceLock<&'static Reactor> = OnceLock::new();

/// The process-global reactor, starting its driver thread (and
/// registering the `lwt_sched::io_poll` idle hook) on first use.
///
/// # Panics
/// If the kernel refuses an epoll instance or the driver thread cannot
/// be spawned — both unrecoverable configuration errors.
pub(crate) fn reactor() -> &'static Reactor {
    REACTOR.get_or_init(|| {
        let epfd = sys::epoll_create1().expect("lwt-net: epoll_create1");
        let wake_fd = sys::eventfd().expect("lwt-net: eventfd");
        sys::epoll_ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            wake_fd,
            sys::EPOLLIN | sys::EPOLLET,
            WAKE_TOKEN,
        )
        .expect("lwt-net: register wake eventfd");
        let r: &'static Reactor = Box::leak(Box::new(Reactor {
            epfd,
            wake_fd,
            registrations: SpinLock::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            idle_slot: Mutex::new(vec![sys::EpollEvent::ZERO; EVENT_BATCH].into_boxed_slice()),
            delayed: SpinLock::new(Vec::new()),
            wheel: TimerWheel::new(),
            epoch: Instant::now(),
            planned_wake: AtomicU64::new(0),
        }));
        COUNTERS.os_threads_spawned.inc();
        std::thread::Builder::new()
            .name("lwt-net-reactor".into())
            .spawn(move || driver_loop(r))
            .expect("lwt-net: spawn reactor driver");
        let registered = lwt_sched::set_io_poll(idle_poll);
        debug_assert!(registered, "reactor initialized twice");
        r
    })
}

fn driver_loop(r: &'static Reactor) {
    let mut buf = vec![sys::EpollEvent::ZERO; EVENT_BATCH];
    loop {
        r.wheel.advance(r.now_ms());
        let timeout = r.plan_sleep();
        r.turn(&mut buf, timeout);
    }
}

/// The `lwt_sched::io_poll` hook: one zero-timeout turn, skipped
/// entirely when another thread is already in one (the driver or a
/// sibling idle worker will deliver). Also advances the timer wheel,
/// so deadlines keep firing when the driver thread is starved of CPU
/// (single-core boxes under full load).
fn idle_poll() -> usize {
    let r = match REACTOR.get() {
        Some(r) => r,
        None => return 0,
    };
    let fired = r.wheel.advance(r.now_ms());
    fired
        + match r.idle_slot.try_lock() {
            Ok(mut buf) => r.turn_with(&mut buf, 0),
            Err(_) => 0,
        }
}

impl Reactor {
    /// Register `fd`, transferring readiness-tracking ownership to the
    /// returned handle. `fd` must already be nonblocking.
    pub(crate) fn register(&self, fd: RawFd) -> std::io::Result<Arc<Registration>> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let reg = Arc::new(Registration {
            fd,
            token,
            read: DirState::new(),
            write: DirState::new(),
            closed: AtomicBool::new(false),
        });
        self.registrations.lock().insert(token, Arc::clone(&reg));
        let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
        if let Err(e) = sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, interest, token) {
            self.registrations.lock().remove(&token);
            return Err(e);
        }
        COUNTERS.io_registrations.inc();
        Ok(reg)
    }

    /// Drop a registration: out of the epoll set, out of the table,
    /// waiters woken with `closed_error()`. Idempotent; called by
    /// socket `Drop` and by explicit shutdowns. The caller still owns
    /// (and closes) the fd itself.
    pub(crate) fn deregister(&self, reg: &Registration) {
        let was_present = self.registrations.lock().remove(&reg.token).is_some();
        if was_present {
            // DEL can fail only if the fd is already gone; either way
            // the kernel side no longer references the token.
            let _ = sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, reg.fd, 0, 0);
        }
        reg.close_wake();
    }

    /// Nudge the driver out of its current `epoll_wait`: timer arms
    /// that beat the planned wake, shutdown paths, tests.
    pub(crate) fn wake_driver(&self) {
        let _ = sys::eventfd_signal(self.wake_fd);
    }

    /// Milliseconds since the reactor epoch — the wheel's tick unit.
    pub(crate) fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Arm a deadline `delay_ms` from now on the process wheel. If it
    /// is earlier than the driver's planned wake, the eventfd is
    /// signalled so the driver replans immediately — the zero-syscall
    /// wake path (one `write` on the armer, no timer fd, no tick).
    pub(crate) fn arm_timer_ms(&self, delay_ms: u64) -> Arc<TimerEntry> {
        let deadline = self.now_ms().saturating_add(delay_ms.max(1));
        let entry = self.wheel.arm(deadline);
        // The insert above happened under the wheel lock; this load is
        // therefore ordered after the driver's latest plan store (see
        // `planned_wake` field docs), so a stale-late plan read is
        // impossible: either the driver saw our entry, or we see its
        // plan and signal.
        if entry.deadline() < self.planned_wake.load(Ordering::SeqCst) {
            self.wake_driver();
        }
        entry
    }

    /// Decide how long the driver may sleep: publish the plan, then
    /// re-read the wheel so an arm racing the publish is never slept
    /// past. Returns an `epoll_wait` timeout in ms (`-1` = forever).
    fn plan_sleep(&self) -> i32 {
        if !self.delayed.lock().is_empty() {
            // A chaos-stashed event must flush next turn: don't sleep.
            self.planned_wake.store(0, Ordering::SeqCst);
            return 0;
        }
        let mut plan = self.wheel.next_deadline().unwrap_or(u64::MAX);
        loop {
            self.planned_wake.store(plan, Ordering::SeqCst);
            let fresh = self.wheel.next_deadline().unwrap_or(u64::MAX);
            if fresh >= plan {
                break;
            }
            plan = fresh;
        }
        if plan == u64::MAX {
            return -1;
        }
        let delta = plan.saturating_sub(self.now_ms());
        i32::try_from(delta).unwrap_or(i32::MAX).max(0)
    }

    /// One dispatch turn against the shared event buffer (driver
    /// thread path).
    fn turn(&self, buf: &mut [sys::EpollEvent], timeout_ms: i32) -> usize {
        self.turn_with(buf, timeout_ms)
    }

    /// One dispatch turn: flush chaos-delayed observations, fetch one
    /// batch of kernel events, dispatch readiness. Returns the number
    /// of direction-deliveries made.
    fn turn_with(&self, buf: &mut [sys::EpollEvent], timeout_ms: i32) -> usize {
        let mut delivered = 0;

        // Deferred observations first: exactly one turn of delay.
        let stashed: Vec<Delayed> = std::mem::take(&mut *self.delayed.lock());
        for d in stashed {
            delivered += self.deliver(d.token, d.read, d.write, false);
        }

        let n = match sys::epoll_wait(self.epfd, buf, timeout_ms) {
            Ok(n) => n,
            Err(_) => 0, // EBADF during teardown races; nothing to do.
        };
        for ev in &buf[..n] {
            let (events, token) = ({ ev.events }, { ev.data });
            if token == WAKE_TOKEN {
                sys::eventfd_drain(self.wake_fd);
                continue;
            }
            let read = events & READ_EVENTS != 0;
            let write = events & WRITE_EVENTS != 0;
            delivered += self.deliver(token, read, write, true);
        }
        delivered
    }

    /// Deliver one observation, or stash it for the next turn under
    /// `NetDelayedReadiness` (fresh kernel events only: a stashed
    /// event is never re-deferred, keeping the injected delay bounded
    /// at one turn).
    fn deliver(&self, token: u64, read: bool, write: bool, may_defer: bool) -> usize {
        if may_defer && should_inject(FaultSite::NetDelayedReadiness) {
            self.delayed.lock().push(Delayed { token, read, write });
            return 0;
        }
        let reg = match self.registrations.lock().get(&token) {
            Some(reg) => Arc::clone(reg),
            // Deregistered while the event was in flight; token ids
            // are never reused, so this is a stale edge, safe to drop.
            None => return 0,
        };
        let mut n = 0;
        if read {
            reg.read.deliver(reg.wait_arg(Dir::Read));
            n += 1;
        }
        if write {
            reg.write.deliver(reg.wait_arg(Dir::Write));
            n += 1;
        }
        n
    }
}

/// Test-and-docs handle: number of live registrations (listeners +
/// streams currently in the epoll interest set).
#[must_use]
pub fn live_registrations() -> usize {
    REACTOR.get().map_or(0, |r| r.registrations.lock().len())
}

/// Block the *calling OS thread* until the reactor has started (used
/// by tests that assert on driver behavior). Touching any socket type
/// starts it implicitly; this is just an explicit spelling.
pub fn ensure_started() {
    let _ = reactor();
}
