//! Replay determinism: the acceptance property of the chaos engine is
//! that an identical `LWT_CHAOS_SEED` yields an identical fault
//! schedule. Pinned here by comparing the `FaultInjected` event
//! streams of two runs — not just `decide()`'s pure output — so the
//! counter reset, the packing, and the tracing path are all covered.

use lwt_chaos::{pack_fault, unpack_fault, FaultSite};
use lwt_metrics::registry::{rings, set_tracing};
use lwt_metrics::EventKind;

/// Drive every fault site through a fixed number of decisions on a
/// fresh named thread (each thread gets its own event ring, so the
/// run's `FaultInjected` stream can be harvested by label afterwards)
/// and return the packed event args in emission order.
fn drive(label: &str, seed: u64) -> Vec<u64> {
    lwt_chaos::force_chaos(seed, 37);
    let t = std::thread::Builder::new()
        .name(label.to_string())
        .spawn(|| {
            for _ in 0..400 {
                for site in FaultSite::ALL {
                    let _ = lwt_chaos::should_inject(site);
                }
            }
        })
        .expect("spawn driver thread");
    t.join().expect("driver thread panicked");
    lwt_chaos::disable_chaos();
    rings()
        .iter()
        .find(|r| r.label() == label)
        .expect("driver thread registered a ring")
        .snapshot()
        .iter()
        .filter(|e| e.kind == EventKind::FaultInjected)
        .map(|e| e.arg)
        .collect()
}

/// Chaos config is process-global; serialize the tests that force it.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn identical_seed_replays_identical_fault_schedule() {
    let _s = serial();
    set_tracing(true);
    let a = drive("chaos-run-a", 0x00DE_CAF0);
    let b = drive("chaos-run-b", 0x00DE_CAF0);
    let c = drive("chaos-run-c", 0x0000_FEED);
    set_tracing(false);
    lwt_chaos::reset_to_env();

    assert!(
        !a.is_empty(),
        "37% over 2400 decisions must inject something"
    );
    assert_eq!(a, b, "same seed must replay the same fault schedule");
    assert_ne!(c, a, "different seed must diverge");

    // Every recorded fault round-trips through the packing and names a
    // real site/index pair the schedule function agrees with.
    for &arg in &a {
        let (site, seq) = unpack_fault(arg).expect("valid packed fault");
        assert_eq!(pack_fault(site, seq), arg);
        assert!(
            lwt_chaos::decide(0x00DE_CAF0, site, seq, 37),
            "recorded injection must match the pure schedule"
        );
    }
}

/// The `SpuriousUnpark` site (tokens deposited into parking workers
/// with no work attached) replays like every other site: same seed,
/// same schedule — so a parking bug surfaced by a spurious wake can be
/// re-run at will.
#[test]
fn spurious_unpark_site_replays_deterministically() {
    let _s = serial();
    set_tracing(true);
    let a = drive("spurious-run-a", 0x000A_11CE);
    let b = drive("spurious-run-b", 0x000A_11CE);
    set_tracing(false);
    lwt_chaos::reset_to_env();

    let only_unparks = |run: &[u64]| {
        run.iter()
            .copied()
            .filter(|&arg| {
                matches!(unpack_fault(arg), Some((FaultSite::SpuriousUnpark, _)))
            })
            .collect::<Vec<_>>()
    };
    let (a, b) = (only_unparks(&a), only_unparks(&b));
    assert!(
        !a.is_empty(),
        "37% over 400 SpuriousUnpark decisions must inject something"
    );
    assert_eq!(a, b, "same seed must replay the same spurious-unpark schedule");
}
