//! Flight-recorder section providers.
//!
//! The lwt-metrics flight recorder knows nothing about this crate —
//! the dependency arrow points the other way. This module pushes two
//! named sections into its bundle registry:
//!
//! * `"chaos"` — the injection seed, rate, and per-site schedule
//!   counters. With these a dumped failure is *replayable*: rerun with
//!   `LWT_CHAOS_SEED=<seed>` and the same schedule indices inject
//!   again.
//! * `"watchdog"` — the stalled-worker/blocked-unit report table, so
//!   a stall bundle names what was stuck without scraping stderr.
//!
//! Registration is idempotent and happens automatically before any
//! dump the watchdog triggers; layers that call
//! [`lwt_metrics::flightrec::dump`] themselves (e.g. `Glt::finalize`
//! on a drain failure) should call [`register_flightrec_sections`]
//! first.

use std::sync::OnceLock;

use crate::engine::{self, FaultSite};
use crate::watchdog::{self, StallSubject};

fn chaos_section() -> String {
    let seqs = engine::site_sequences();
    let mut sites = String::new();
    for (i, site) in FaultSite::ALL.iter().enumerate() {
        if i > 0 {
            sites.push(',');
        }
        sites.push_str(&format!(
            "{{\"site\":\"{}\",\"decisions\":{}}}",
            site.name(),
            seqs[i]
        ));
    }
    format!(
        "{{\"enabled\":{},\"seed\":{},\"rate_percent\":{},\"sites\":[{}]}}",
        engine::chaos_enabled(),
        engine::current_seed(),
        engine::current_rate(),
        sites
    )
}

fn watchdog_section() -> String {
    let mut reports = String::new();
    for (i, r) in watchdog::reports().iter().enumerate() {
        if i > 0 {
            reports.push(',');
        }
        match r.subject {
            StallSubject::Worker(backend, worker) => reports.push_str(&format!(
                "{{\"kind\":\"worker\",\"backend\":\"{backend}\",\"worker\":{worker},\"stuck_ms\":{}}}",
                r.stuck_ms
            )),
            StallSubject::Blocked(kind, token) => reports.push_str(&format!(
                "{{\"kind\":\"blocked\",\"wait\":\"{}\",\"token\":{token},\"stuck_ms\":{}}}",
                kind.name(),
                r.stuck_ms
            )),
        }
    }
    format!(
        "{{\"enabled\":{},\"reports\":[{}]}}",
        watchdog::watchdog_enabled(),
        reports
    )
}

/// Register the `"chaos"` and `"watchdog"` bundle sections with the
/// flight recorder. Idempotent; one `OnceLock` check after the first
/// call.
pub fn register_flightrec_sections() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        lwt_metrics::flightrec::register_section("chaos", chaos_section);
        lwt_metrics::flightrec::register_section("watchdog", watchdog_section);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_render_valid_shapes() {
        let c = chaos_section();
        assert!(c.starts_with('{') && c.ends_with('}'), "{c}");
        for key in ["\"enabled\":", "\"seed\":", "\"rate_percent\":", "\"sites\":["] {
            assert!(c.contains(key), "missing {key} in {c}");
        }
        // One entry per fault site, each carrying its stable name.
        for site in FaultSite::ALL {
            assert!(c.contains(site.name()), "missing {} in {c}", site.name());
        }
        let w = watchdog_section();
        assert!(w.contains("\"reports\":["), "{w}");
    }

    #[test]
    fn registration_lands_in_bundles() {
        register_flightrec_sections();
        register_flightrec_sections(); // idempotent
        let bundle = lwt_metrics::flightrec::render_bundle("section test");
        assert!(bundle.contains("\"chaos\":{\"enabled\":"), "{bundle}");
        assert!(bundle.contains("\"watchdog\":{\"enabled\":"), "{bundle}");
    }
}
