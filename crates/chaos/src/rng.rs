//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace is hermetic — no external crates — so the randomness
//! used by work-stealing victim selection, the differential tests, and
//! the property-test harness all comes from here. Two classic
//! generators are provided:
//!
//! * [`SplitMix64`] — Steele/Lea/Vigna's 64-bit mixer. One u64 of
//!   state, excellent for seeding and for short-lived streams.
//! * [`Xoshiro256StarStar`] — Blackman/Vigna's general-purpose
//!   generator; the workhorse for everything that draws many values
//!   (shuffles, victim selection, randomized workloads).
//!
//! Both are seedable, `Copy` (so they can live in a
//! [`std::cell::Cell`] for `&self` APIs like
//! `lwt_sched::RandomVictim`), and deterministic: a fixed seed yields
//! a fixed stream on every platform. The [`Rng`] trait layers a
//! `rand`-like surface on top: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::shuffle`].
//!
//! Bounded generation uses Lemire's widening-multiply rejection
//! method, so `gen_range` is unbiased for every bound.

use std::ops::Range;

/// SplitMix64 (Steele, Lea & Vigna 2014): `z = (state += golden);
/// mix(z)`. Passes BigCrush when used as a stream; primarily used here
/// to expand small seeds into full generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator starting from `seed`. Every seed — including zero —
    /// is valid and produces a distinct stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018). 256 bits of state, period
/// 2^256 − 1, passes all known statistical batteries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Expand a 64-bit seed into full state via [`SplitMix64`], the
    /// seeding procedure the xoshiro authors recommend. The expansion
    /// can never produce the forbidden all-zero state.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Integers [`Rng::gen_range`] can draw. Implemented for the unsigned
/// widths the workspace uses; all arithmetic routes through `u64`.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to `u64` (lossless for every implementor).
    fn to_u64(self) -> u64;
    /// Narrow from `u64`; the value is guaranteed in range.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// A `rand`-like surface over any raw 64-bit generator.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw below `bound` using Lemire's widening-multiply
    /// rejection method — unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn gen_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_u64_below(0)");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from a half-open range, like `rand`'s
    /// `gen_range(lo..hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
        assert!(lo < hi, "gen_range over an empty range");
        T::from_u64(lo + self.gen_u64_below(hi - lo))
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_u64_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl Rng for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs from Vigna's splitmix64.c with seed 0.
    #[test]
    fn splitmix64_matches_reference_vectors() {
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);

        let mut c = Xoshiro256StarStar::seed_from_u64(7);
        assert_ne!(sa, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn copy_through_cell_preserves_the_stream() {
        let cell = std::cell::Cell::new(Xoshiro256StarStar::seed_from_u64(9));
        let mut direct = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..16 {
            let mut r = cell.get();
            let got = r.next_u64();
            cell.set(r);
            assert_eq!(got, direct.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Xoshiro256StarStar::seed_from_u64(0xBEEF);
        for _ in 0..50_000 {
            let v = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let b = r.gen_range(0u8..4);
            assert!(b < 4);
            let u = r.gen_range(3usize..4);
            assert_eq!(u, 3, "single-element range has one outcome");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let _ = SplitMix64::new(1).gen_range(5u32..5);
    }

    /// Chi-square goodness-of-fit smoke test over the draw used by
    /// victim selection (`gen_u64_below`). With k = 16 buckets the
    /// 99.9th percentile of χ²(15) is ≈ 37.7; a uniform generator
    /// clears that with enormous margin, a biased one does not.
    #[test]
    fn chi_square_uniformity_smoke() {
        const BUCKETS: u64 = 16;
        const DRAWS: usize = 160_000;
        let mut r = Xoshiro256StarStar::seed_from_u64(0x5EED);
        let mut counts = [0usize; BUCKETS as usize];
        for _ in 0..DRAWS {
            counts[r.gen_u64_below(BUCKETS) as usize] += 1;
        }
        let expected = DRAWS as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 37.7, "χ² = {chi2:.2} over {BUCKETS} buckets");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut r = Xoshiro256StarStar::seed_from_u64(1234);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());

        let mut r2 = Xoshiro256StarStar::seed_from_u64(1234);
        let mut v2: Vec<u32> = (0..100).collect();
        r2.shuffle(&mut v2);
        assert_eq!(v, v2, "same seed, same permutation");
    }

    #[test]
    fn gen_bool_edges_and_rough_rate() {
        let mut r = SplitMix64::new(3);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
