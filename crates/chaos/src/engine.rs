//! The deterministic fault-injection engine.
//!
//! Every runtime decision point that can plausibly fail in production
//! — a steal probe, a victim draw, a stack-cache lookup, a FEB wake,
//! a scheduler iteration — consults [`should_inject`] with its
//! [`FaultSite`]. When chaos is off (the default) that call is **one
//! relaxed atomic load** and a predictable branch, the same contract
//! `LWT_TRACE` gives tracing. When chaos is on, the engine answers
//! from a schedule that is a *pure function of the seed*:
//!
//! ```text
//! inject(site, i) = mix(seed ^ salt(site) ^ i·φ) mod 100 < rate
//! ```
//!
//! where `i` is the site's own injection counter and `mix` is the
//! workspace [`SplitMix64`](crate::rng::SplitMix64) finalizer. Because
//! the decision depends only on `(seed, site, i)` — never on timing,
//! thread identity, or interleaving — the same `LWT_CHAOS_SEED`
//! replays the same per-site fault schedule on every run, which is
//! what makes chaos failures *debuggable*: rerun with the seed from
//! the failing log and the exact same probes fail again.
//!
//! Each injected fault increments
//! [`COUNTERS.faults_injected`](lwt_metrics::Counters::faults_injected)
//! and emits a [`FaultInjected`](EventKind::FaultInjected) ring event
//! whose `arg` packs the site and the schedule index ([`pack_fault`]),
//! so a trace shows exactly which probes were sabotaged.
//!
//! ## Knobs
//!
//! * `LWT_CHAOS_SEED=<u64>` — enable injection with this seed (`0` is
//!   a valid seed; unset/empty means off).
//! * `LWT_CHAOS_RATE=<0..=100>` — per-decision injection probability
//!   in percent (default [`DEFAULT_RATE_PERCENT`]).
//! * [`force_chaos`] / [`disable_chaos`] / [`reset_to_env`] — the
//!   programmatic overrides tests use.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;

use crate::rng::SplitMix64;

/// Default per-decision injection probability, in percent.
pub const DEFAULT_RATE_PERCENT: u64 = 10;

/// A decision point that chaos can sabotage. The discriminant is
/// stable: it is packed into `FaultInjected` event args.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultSite {
    /// A steal probe is forced to report the victim empty
    /// (`lwt_sched::ReadyQueue::steal_once`).
    StealFail = 0,
    /// Random victim selection is misdirected to the thief itself,
    /// which callers treat as a failed attempt
    /// (`lwt_sched::RandomVictim::pick`).
    StealMisdirect = 1,
    /// A stack-cache lookup is forced to miss, falling back to a
    /// fresh allocation — never aborting (`lwt_fiber::cache::acquire`).
    StackCacheMiss = 2,
    /// A FEB waiter's wake is delayed by extra relax rounds
    /// (`lwt_sync::FebCell`).
    FebStallWake = 3,
    /// A FEB waiter takes a spurious wake: it re-polls once without
    /// the bit having filled (`lwt_sync::FebCell`).
    FebSpuriousWake = 4,
    /// A scheduler loop yields its OS timeslice before dispatching
    /// the next unit (all five backends' worker loops).
    YieldPoint = 5,
    /// An idle worker entering the parked state takes a spurious
    /// wake: a token is deposited with no work attached, so the park
    /// returns immediately and the worker re-sweeps an empty pool
    /// (`lwt_sched::ParkGroup::park`). Exercises the re-check path
    /// every wake — spurious or real — must survive.
    SpuriousUnpark = 6,
    /// A future task that just parked (its poll returned `Pending`
    /// and the runner transitioned it back to idle) is immediately
    /// re-woken with no progress attached, forcing an extra poll
    /// round trip (`lwt_ultcore::task`). Exercises the
    /// idle→scheduled→poll→`Pending` cycle every spurious wake — the
    /// waker contract futures must survive — and the wake/requeue
    /// race with a concurrent real waker.
    AsyncSpuriousWake = 7,
    /// A worker yields its OS timeslice right before polling a future
    /// task (`lwt_ultcore::task`), widening the window in which wakes
    /// land on a SCHEDULED/RUNNING task and must coalesce rather than
    /// double-queue.
    AsyncPollDelay = 8,
    /// A socket write is truncated to a prefix of the buffer before
    /// the syscall (`lwt_net::TcpStream`), surfacing a short write to
    /// the caller exactly as a full kernel send buffer would.
    /// `write_all`-style loops must resume from the cut.
    NetPartialWrite = 9,
    /// A socket operation reports `WouldBlock` once even though the
    /// kernel would have accepted it (`lwt_net`), forcing an extra
    /// trip through the readiness wait path. The registration's ready
    /// flag is left up, so the retry proceeds immediately — a delay,
    /// never a livelock.
    NetSpuriousEagain = 10,
    /// The reactor driver defers delivering an observed readiness
    /// event by one dispatch turn (`lwt_net::reactor`). The event is
    /// stashed, never dropped — edge-triggered readiness is not
    /// redelivered by the kernel, so a drop would be a real hang.
    NetDelayedReadiness = 11,
    /// A served HTTP connection is killed right after a response is
    /// written (`lwt_net::http`): the server close-wakes the socket as
    /// a peer reset would. Clients must treat it as a retryable
    /// transport error; the server's connection accounting must not
    /// leak the slot.
    NetConnKill = 12,
    /// A connection read in the HTTP server stalls for extra yield
    /// rounds before issuing the syscall (`lwt_net::http`) — a slow
    /// client in miniature. Exercises the idle/header deadline path
    /// without needing a real slow peer.
    NetReadStall = 13,
    /// The request handler panics mid-request (`lwt_net::http`). The
    /// server's `catch_unwind` isolation must turn it into a 500 and
    /// a closed connection — never a dead worker.
    HandlerPanic = 14,
}

/// Number of distinct fault sites.
pub const NUM_SITES: usize = 15;

impl FaultSite {
    /// All sites, in discriminant order.
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::StealFail,
        FaultSite::StealMisdirect,
        FaultSite::StackCacheMiss,
        FaultSite::FebStallWake,
        FaultSite::FebSpuriousWake,
        FaultSite::YieldPoint,
        FaultSite::SpuriousUnpark,
        FaultSite::AsyncSpuriousWake,
        FaultSite::AsyncPollDelay,
        FaultSite::NetPartialWrite,
        FaultSite::NetSpuriousEagain,
        FaultSite::NetDelayedReadiness,
        FaultSite::NetConnKill,
        FaultSite::NetReadStall,
        FaultSite::HandlerPanic,
    ];

    /// Stable display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::StealFail => "StealFail",
            FaultSite::StealMisdirect => "StealMisdirect",
            FaultSite::StackCacheMiss => "StackCacheMiss",
            FaultSite::FebStallWake => "FebStallWake",
            FaultSite::FebSpuriousWake => "FebSpuriousWake",
            FaultSite::YieldPoint => "YieldPoint",
            FaultSite::SpuriousUnpark => "SpuriousUnpark",
            FaultSite::AsyncSpuriousWake => "AsyncSpuriousWake",
            FaultSite::AsyncPollDelay => "AsyncPollDelay",
            FaultSite::NetPartialWrite => "NetPartialWrite",
            FaultSite::NetSpuriousEagain => "NetSpuriousEagain",
            FaultSite::NetDelayedReadiness => "NetDelayedReadiness",
            FaultSite::NetConnKill => "NetConnKill",
            FaultSite::NetReadStall => "NetReadStall",
            FaultSite::HandlerPanic => "HandlerPanic",
        }
    }

    /// Inverse of the `repr(u8)` discriminant.
    #[must_use]
    pub const fn from_u8(v: u8) -> Option<FaultSite> {
        if (v as usize) < NUM_SITES {
            Some(FaultSite::ALL[v as usize])
        } else {
            None
        }
    }

    /// Per-site stream separator: distinct sites draw from disjoint
    /// regions of the seed space, so one site's schedule says nothing
    /// about another's.
    const fn salt(self) -> u64 {
        // Large odd constants, pairwise distant. Appending entries for
        // new sites never perturbs existing sites' seed streams, so
        // pinned chaos schedules survive engine growth.
        [
            0x9E6C_A7E3_5F0E_4B11,
            0x2545_F491_4F6C_DD1D,
            0xD1B5_4A32_D192_ED03,
            0x8CB9_2BA7_2F3D_8DD7,
            0x5851_F42D_4C95_7F2D,
            0x14057B7E_F767_814F,
            0xA076_1D64_78BD_642F,
            0x6C62_272E_07BB_0143,
            0x3243_F6A8_885A_308D,
            0x13198A2E_0370_7344,
            0xA409_3822_299F_31D0,
            0x082E_FA98_EC4E_6C89,
            0x4528_21E6_38D0_1377,
            0xBE54_66CF_34E9_0C6D,
            0xC0AC_29B7_C97C_50DD,
        ][self as usize]
    }
}

/// 0 = uninitialized (consult `LWT_CHAOS_SEED`), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);
static RATE: AtomicU64 = AtomicU64::new(DEFAULT_RATE_PERCENT);

/// Per-site decision counters: the `i` in the schedule formula. The
/// counter allocates schedule indices; *which worker* draws index `i`
/// varies run to run, but whether index `i` injects does not.
static SEQ: [AtomicU64; NUM_SITES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Whether fault injection is on. Hot path: one relaxed load. The
/// environment is consulted once, on first call.
#[inline]
#[must_use]
pub fn chaos_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let seed = std::env::var("LWT_CHAOS_SEED")
        .ok()
        .and_then(|v| parse_u64(&v));
    let rate = std::env::var("LWT_CHAOS_RATE")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&r| r <= 100)
        .unwrap_or(DEFAULT_RATE_PERCENT);
    if let Some(seed) = seed {
        SEED.store(seed, Ordering::Relaxed);
        RATE.store(rate, Ordering::Relaxed);
    }
    // Lose gracefully to a concurrent `force_chaos`/`disable_chaos`.
    let _ = STATE.compare_exchange(
        0,
        if seed.is_some() { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

fn parse_u64(v: &str) -> Option<u64> {
    let v = v.trim();
    if v.is_empty() {
        return None;
    }
    v.strip_prefix("0x")
        .or_else(|| v.strip_prefix("0X"))
        .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
}

/// Programmatically enable injection with `seed` at `rate_percent`
/// (clamped to 100), overriding `LWT_CHAOS_SEED`. Resets the per-site
/// schedule counters so the schedule restarts from index 0.
pub fn force_chaos(seed: u64, rate_percent: u64) {
    SEED.store(seed, Ordering::Relaxed);
    RATE.store(rate_percent.min(100), Ordering::Relaxed);
    reset_schedule();
    STATE.store(2, Ordering::Relaxed);
}

/// Programmatically disable injection, overriding `LWT_CHAOS_SEED`.
pub fn disable_chaos() {
    STATE.store(1, Ordering::Relaxed);
}

/// Forget any programmatic override: the next [`chaos_enabled`] call
/// consults `LWT_CHAOS_SEED` again. Tests that [`force_chaos`] must
/// call this on the way out so an env-driven chaos run (the CI chaos
/// stage) is not silently switched off for the rest of the process.
pub fn reset_to_env() {
    reset_schedule();
    STATE.store(0, Ordering::Relaxed);
}

/// Zero every per-site schedule counter (schedule restarts at index 0).
pub fn reset_schedule() {
    for seq in &SEQ {
        seq.store(0, Ordering::Relaxed);
    }
}

/// The active seed (meaningful only while enabled).
#[must_use]
pub fn current_seed() -> u64 {
    SEED.load(Ordering::Relaxed)
}

/// The active per-decision injection rate in percent.
#[must_use]
pub fn current_rate() -> u64 {
    RATE.load(Ordering::Relaxed)
}

/// Snapshot of the per-site schedule counters, in [`FaultSite::ALL`]
/// order: how many decisions each site has drawn so far. Together with
/// the seed this pins down exactly which schedule indices a run
/// consumed — the flight recorder embeds it so a dumped failure can be
/// replayed.
#[must_use]
pub fn site_sequences() -> [u64; NUM_SITES] {
    let mut out = [0u64; NUM_SITES];
    for (slot, seq) in out.iter_mut().zip(SEQ.iter()) {
        *slot = seq.load(Ordering::Relaxed);
    }
    out
}

/// The pure schedule function: does schedule index `seq` of `site`
/// inject under `(seed, rate_percent)`? Depends on nothing else — no
/// clocks, no threads, no global state — which is the determinism
/// guarantee the replay tests pin down.
#[must_use]
pub fn decide(seed: u64, site: FaultSite, seq: u64, rate_percent: u64) -> bool {
    let mut mix = SplitMix64::new(
        seed ^ site.salt() ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    mix.next_u64() % 100 < rate_percent
}

/// Should this decision point fail? One relaxed load when chaos is
/// off; when on, draws the site's next schedule index and answers
/// from [`decide`], counting and tracing the injection.
#[inline]
#[must_use]
pub fn should_inject(site: FaultSite) -> bool {
    if !chaos_enabled() {
        return false;
    }
    should_inject_enabled(site)
}

#[cold]
fn should_inject_enabled(site: FaultSite) -> bool {
    let seq = SEQ[site as usize].fetch_add(1, Ordering::Relaxed);
    if decide(SEED.load(Ordering::Relaxed), site, seq, RATE.load(Ordering::Relaxed)) {
        COUNTERS.faults_injected.inc();
        emit(EventKind::FaultInjected, pack_fault(site, seq));
        true
    } else {
        false
    }
}

/// Pack a fault's site and schedule index into a `FaultInjected`
/// event arg: site in the top byte, index in the low 56 bits.
#[must_use]
pub const fn pack_fault(site: FaultSite, seq: u64) -> u64 {
    ((site as u64) << 56) | (seq & 0x00FF_FFFF_FFFF_FFFF)
}

/// Inverse of [`pack_fault`]; `None` for an unknown site byte.
#[must_use]
pub const fn unpack_fault(arg: u64) -> Option<(FaultSite, u64)> {
    match FaultSite::from_u8((arg >> 56) as u8) {
        Some(site) => Some((site, arg & 0x00FF_FFFF_FFFF_FFFF)),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // STATE is process-global; tests that flip it serialize here.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn decide_is_pure_and_seed_sensitive() {
        let a: Vec<bool> = (0..512)
            .map(|i| decide(42, FaultSite::StealFail, i, 10))
            .collect();
        let b: Vec<bool> = (0..512)
            .map(|i| decide(42, FaultSite::StealFail, i, 10))
            .collect();
        assert_eq!(a, b, "same (seed, site, rate) must give the same schedule");
        let c: Vec<bool> = (0..512)
            .map(|i| decide(43, FaultSite::StealFail, i, 10))
            .collect();
        assert_ne!(a, c, "different seed must give a different schedule");
        let d: Vec<bool> = (0..512)
            .map(|i| decide(42, FaultSite::YieldPoint, i, 10))
            .collect();
        assert_ne!(a, d, "different site must give a different schedule");
    }

    #[test]
    fn decide_rate_edges() {
        for i in 0..256 {
            assert!(!decide(7, FaultSite::FebStallWake, i, 0));
            assert!(decide(7, FaultSite::FebStallWake, i, 100));
        }
        // 10% rate lands in a plausible band over a long window.
        let hits = (0..10_000)
            .filter(|&i| decide(7, FaultSite::StealFail, i, 10))
            .count();
        assert!((700..1_300).contains(&hits), "10% rate gave {hits}/10000");
    }

    #[test]
    fn pack_unpack_round_trips() {
        for site in FaultSite::ALL {
            let arg = pack_fault(site, 0x1234_5678);
            assert_eq!(unpack_fault(arg), Some((site, 0x1234_5678)));
        }
        assert_eq!(unpack_fault(u64::MAX), None);
        assert_eq!(FaultSite::from_u8(NUM_SITES as u8), None);
    }

    #[test]
    fn site_names_unique_and_round_trip() {
        let mut names: Vec<_> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SITES);
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::from_u8(site as u8), Some(site));
        }
    }

    #[test]
    fn force_and_disable_drive_should_inject() {
        let _s = serial();
        force_chaos(0xC0FFEE, 100);
        assert!(chaos_enabled());
        assert!(should_inject(FaultSite::StealFail), "rate 100 always injects");
        force_chaos(0xC0FFEE, 0);
        assert!(!should_inject(FaultSite::StealFail), "rate 0 never injects");
        disable_chaos();
        assert!(!chaos_enabled());
        assert!(!should_inject(FaultSite::StealFail));
        reset_to_env();
    }

    #[test]
    fn schedule_counters_restart_on_force() {
        let _s = serial();
        force_chaos(99, 50);
        let first: Vec<bool> = (0..64).map(|_| should_inject(FaultSite::StackCacheMiss)).collect();
        force_chaos(99, 50); // resets the schedule
        let second: Vec<bool> = (0..64).map(|_| should_inject(FaultSite::StackCacheMiss)).collect();
        assert_eq!(first, second, "same seed from index 0 must replay");
        disable_chaos();
        reset_to_env();
    }

    #[test]
    fn parse_u64_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64(" 0xDEADBEEF "), Some(0xDEAD_BEEF));
        assert_eq!(parse_u64("0"), Some(0));
        assert_eq!(parse_u64(""), None);
        assert_eq!(parse_u64("nope"), None);
    }
}
