//! Deterministic chaos engineering for the lwt runtimes.
//!
//! Three subsystems live here, all designed around the same cost
//! contract as `LWT_TRACE`: **fully disabled, each probe is one
//! relaxed atomic load**.
//!
//! * [`engine`] — seeded fault injection. Runtime decision points
//!   (steal attempts, victim selection, stack-cache lookups, FEB
//!   wakes, dispatch yield points) ask [`should_inject`] whether to
//!   fail artificially. The schedule is a pure function of
//!   `(seed, site, per-site index)`, so the same `LWT_CHAOS_SEED`
//!   replays the same fault schedule regardless of thread
//!   interleaving.
//! * [`watchdog`] — per-worker heartbeats and a detector thread that
//!   *flags* (never kills) stalled workers and over-deadline waits,
//!   reporting through `lwt-metrics` and a blocked-unit table.
//! * [`rng`] — the workspace PRNG (SplitMix64 + xoshiro256**),
//!   relocated here from `lwt-sync` so injection can live inside
//!   `lwt-sync` itself without a dependency cycle; `lwt_sync::rng`
//!   re-exports it at the old path.
//!
//! This crate depends only on `lwt-metrics`, placing it below every
//! runtime crate in the workspace DAG.

#![warn(missing_docs)]

pub mod engine;
pub mod rng;
pub mod sections;
pub mod watchdog;

pub use engine::{
    chaos_enabled, current_rate, current_seed, decide, disable_chaos, force_chaos, pack_fault,
    reset_schedule, reset_to_env, should_inject, site_sequences, unpack_fault, FaultSite,
    DEFAULT_RATE_PERCENT,
};
pub use sections::register_flightrec_sections;
pub use watchdog::{
    block_enter, disable_watchdog, force_watchdog, register_worker, reports, reset_watchdog_to_env,
    take_reports, watchdog_enabled, BlockGuard, BlockKind, Heartbeat, StallReport, StallSubject,
    WatchdogConfig, DEFAULT_THRESHOLD_MS,
};
