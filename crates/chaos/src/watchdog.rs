//! The stall watchdog: per-worker heartbeats plus a detector thread
//! that flags — never kills — stuck workers and over-deadline waits.
//!
//! Two things are watched:
//!
//! * **Workers.** Every scheduler loop registers a [`Heartbeat`] and
//!   beats it once per iteration. A worker whose last beat is older
//!   than the stall threshold is flagged once (and re-armed when it
//!   beats again), so a wedged dispatch loop — livelock, a unit that
//!   never returns — surfaces as a [`StallReport`] instead of silent
//!   missing throughput.
//! * **Blocked units.** Long waits (FEB acquires, joins, GLT event
//!   waits) register a [`BlockGuard`] on their slow path; an entry
//!   that outlives the blocked-deadline is flagged with its site kind
//!   and token. This is the "blocked-unit table": [`reports`] lists
//!   every flagged wait, the deliberately seeded FEB deadlock test
//!   pins the detection latency.
//!
//! Detection *reports*: each new flag increments
//! [`stalls_detected`](lwt_metrics::Counters::stalls_detected), emits
//! a [`StallDetected`](lwt_metrics::EventKind::StallDetected) ring
//! event, prints one `lwt-watchdog:` line to stderr (what the CI
//! zero-false-positive smoke greps for), and is appended to the
//! in-process table. Nothing is ever unblocked, killed, or retried —
//! degradation decisions stay with the caller.
//!
//! ## Cost when off
//!
//! [`Heartbeat::beat`] and [`block_enter`] are one relaxed load when
//! the watchdog is disabled; no detector thread is spawned.
//!
//! ## Knobs
//!
//! * `LWT_WATCHDOG=1` — enable (unset/empty/`0` means off).
//! * `LWT_WATCHDOG_MS=<ms>` — stall and blocked-wait threshold
//!   (default [`DEFAULT_THRESHOLD_MS`]); the detector wakes at a
//!   quarter of it, so detection latency is at most ~1.25×.
//! * [`force_watchdog`] / [`disable_watchdog`] /
//!   [`reset_watchdog_to_env`] — programmatic overrides for tests.
//!
//! ## False positives
//!
//! A *healthy* worker beats every loop iteration, including idle
//! backoff naps, so it can only be flagged while executing one work
//! unit for longer than the threshold — a genuinely long-running unit
//! is indistinguishable from a wedged one by heartbeat alone (raise
//! `LWT_WATCHDOG_MS` for coarse-grained workloads). Blocked-wait
//! flags only ever fire after the configured deadline, so ordinary
//! short joins never report.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use lwt_metrics::registry::{emit, COUNTERS};
use lwt_metrics::EventKind;

/// Default stall/blocked threshold in milliseconds.
pub const DEFAULT_THRESHOLD_MS: u64 = 500;

/// Watchdog timing configuration (see [`force_watchdog`]).
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Detector wake period.
    pub interval: Duration,
    /// A worker whose last heartbeat is older than this is stalled.
    pub worker_stall: Duration,
    /// A registered wait older than this is over-deadline.
    pub blocked_after: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        let threshold = Duration::from_millis(DEFAULT_THRESHOLD_MS);
        WatchdogConfig {
            interval: threshold / 4,
            worker_stall: threshold,
            blocked_after: threshold,
        }
    }
}

/// 0 = uninitialized (consult `LWT_WATCHDOG`), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);
static INTERVAL_NS: AtomicU64 = AtomicU64::new(DEFAULT_THRESHOLD_MS * 1_000_000 / 4);
static STALL_NS: AtomicU64 = AtomicU64::new(DEFAULT_THRESHOLD_MS * 1_000_000);
static BLOCKED_NS: AtomicU64 = AtomicU64::new(DEFAULT_THRESHOLD_MS * 1_000_000);

/// Monotonic nanoseconds since the first watchdog touch.
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Whether the watchdog is on. Hot path: one relaxed load; the
/// environment is consulted once, on first call.
#[inline]
#[must_use]
pub fn watchdog_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = matches!(std::env::var("LWT_WATCHDOG"), Ok(v) if !v.is_empty() && v != "0");
    if on {
        if let Some(ms) = std::env::var("LWT_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
        {
            set_thresholds(Duration::from_millis(ms));
        }
    }
    // Lose gracefully to a concurrent `force_watchdog`.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    if STATE.load(Ordering::Relaxed) == 2 {
        ensure_detector();
        true
    } else {
        false
    }
}

fn set_thresholds(threshold: Duration) {
    let ns = u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX);
    STALL_NS.store(ns, Ordering::Relaxed);
    BLOCKED_NS.store(ns, Ordering::Relaxed);
    INTERVAL_NS.store((ns / 4).max(1_000_000), Ordering::Relaxed);
}

/// Programmatically enable the watchdog with explicit timings,
/// overriding `LWT_WATCHDOG`. Clears the report table so a test reads
/// only its own detections.
pub fn force_watchdog(cfg: WatchdogConfig) {
    INTERVAL_NS.store(
        u64::try_from(cfg.interval.as_nanos()).unwrap_or(u64::MAX).max(1_000_000),
        Ordering::Relaxed,
    );
    STALL_NS.store(u64::try_from(cfg.worker_stall.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
    BLOCKED_NS.store(u64::try_from(cfg.blocked_after.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
    take_reports();
    STATE.store(2, Ordering::Relaxed);
    ensure_detector();
}

/// Programmatically disable the watchdog (the detector thread idles).
pub fn disable_watchdog() {
    STATE.store(1, Ordering::Relaxed);
}

/// Forget any programmatic override: the next [`watchdog_enabled`]
/// call consults `LWT_WATCHDOG` again.
pub fn reset_watchdog_to_env() {
    STATE.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Worker heartbeats
// ---------------------------------------------------------------------------

struct BeatSlot {
    backend: &'static str,
    worker: usize,
    last_ns: AtomicU64,
    retired: AtomicBool,
    flagged: AtomicBool,
    /// Deliberately asleep on its parker: the detector must not read
    /// a parked worker's silent heartbeat as a stall.
    parked: AtomicBool,
}

/// A worker's heartbeat handle. Beat it once per scheduler-loop
/// iteration; drop it when the loop exits (the slot retires).
#[derive(Debug)]
pub struct Heartbeat {
    slot: Arc<BeatSlot>,
}

impl std::fmt::Debug for BeatSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BeatSlot")
            .field("backend", &self.backend)
            .field("worker", &self.worker)
            .finish()
    }
}

impl Heartbeat {
    /// Record liveness. One relaxed load when the watchdog is off.
    #[inline]
    pub fn beat(&self) {
        if watchdog_enabled() {
            self.slot.last_ns.store(now_ns(), Ordering::Relaxed);
        }
    }

    /// Mark the worker as deliberately parked (asleep on its parker,
    /// `LWT_WAIT_POLICY` passive/adaptive). A parked worker does not
    /// beat, so without this the detector would flag every healthy
    /// sleeper. Unmarking also refreshes the heartbeat — the silence
    /// while asleep must not count against the freshly woken worker.
    #[inline]
    pub fn set_parked(&self, parked: bool) {
        // Unconditional (unlike `beat`): a watchdog enabled mid-park
        // must still see the worker as deliberately asleep.
        if !parked && watchdog_enabled() {
            self.slot.last_ns.store(now_ns(), Ordering::Relaxed);
        }
        self.slot.parked.store(parked, Ordering::Relaxed);
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.slot.retired.store(true, Ordering::Relaxed);
    }
}

static WORKERS: Mutex<Vec<Arc<BeatSlot>>> = Mutex::new(Vec::new());

fn lock_poisonless<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Register the calling scheduler loop with the watchdog. Always
/// cheap; the detector only watches the slot while enabled.
#[must_use]
pub fn register_worker(backend: &'static str, worker: usize) -> Heartbeat {
    let slot = Arc::new(BeatSlot {
        backend,
        worker,
        last_ns: AtomicU64::new(now_ns()),
        retired: AtomicBool::new(false),
        flagged: AtomicBool::new(false),
        parked: AtomicBool::new(false),
    });
    {
        let mut workers = lock_poisonless(&WORKERS);
        workers.retain(|s| !s.retired.load(Ordering::Relaxed));
        workers.push(Arc::clone(&slot));
    }
    if watchdog_enabled() {
        ensure_detector();
    }
    Heartbeat { slot }
}

// ---------------------------------------------------------------------------
// Blocked-unit registry
// ---------------------------------------------------------------------------

/// What kind of wait a [`BlockGuard`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A full/empty-bit acquire (`lwt_sync::FebCell`).
    Feb,
    /// A join on a work unit (handle join, `wait_until`).
    Join,
    /// A one-shot event wait (`lwt_sync::Event`, GLT join slots).
    Event,
    /// A runtime drain (`Glt::finalize` and backend shutdowns).
    Finalize,
    /// An I/O readiness wait on the reactor (`lwt-net`): a ULT
    /// relax-looping until its socket registration turns ready.
    Io,
}

impl BlockKind {
    /// Stable display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            BlockKind::Feb => "feb",
            BlockKind::Join => "join",
            BlockKind::Event => "event",
            BlockKind::Finalize => "finalize",
            BlockKind::Io => "io",
        }
    }
}

struct BlockEntry {
    kind: BlockKind,
    token: u64,
    since_ns: u64,
    flagged: bool,
}

static BLOCKED: Mutex<Vec<Option<BlockEntry>>> = Mutex::new(Vec::new());

/// Registration handle for a long wait; drop when the wait resolves.
#[derive(Debug)]
pub struct BlockGuard {
    idx: usize,
}

impl Drop for BlockGuard {
    fn drop(&mut self) {
        lock_poisonless(&BLOCKED)[self.idx] = None;
    }
}

/// Register a wait with the watchdog. Returns `None` (one relaxed
/// load) when disabled. `token` identifies the awaited thing — the
/// convention is the address of the cell/slot being waited on — and
/// is echoed in the report so a deadlock names its unit.
#[must_use]
pub fn block_enter(kind: BlockKind, token: u64) -> Option<BlockGuard> {
    if !watchdog_enabled() {
        return None;
    }
    let entry = BlockEntry {
        kind,
        token,
        since_ns: now_ns(),
        flagged: false,
    };
    let mut blocked = lock_poisonless(&BLOCKED);
    let idx = match blocked.iter().position(Option::is_none) {
        Some(i) => {
            blocked[i] = Some(entry);
            i
        }
        None => {
            blocked.push(Some(entry));
            blocked.len() - 1
        }
    };
    drop(blocked);
    ensure_detector();
    Some(BlockGuard { idx })
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// What a report is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallSubject {
    /// A worker's heartbeat went silent. Fields: backend label,
    /// worker index.
    Worker(&'static str, usize),
    /// A registered wait outlived its deadline. Fields: wait kind,
    /// caller-supplied token.
    Blocked(BlockKind, u64),
}

/// One watchdog detection (nothing was killed; this is a flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// What stalled.
    pub subject: StallSubject,
    /// How long it had been silent/blocked when flagged.
    pub stuck_ms: u64,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.subject {
            StallSubject::Worker(backend, worker) => write!(
                f,
                "worker stall: {backend} worker {worker} silent for {} ms",
                self.stuck_ms
            ),
            StallSubject::Blocked(kind, token) => write!(
                f,
                "blocked unit: {} wait on {token:#x} exceeded deadline ({} ms)",
                kind.name(),
                self.stuck_ms
            ),
        }
    }
}

static REPORTS: Mutex<Vec<StallReport>> = Mutex::new(Vec::new());

/// The blocked-unit/stalled-worker table accumulated so far.
#[must_use]
pub fn reports() -> Vec<StallReport> {
    lock_poisonless(&REPORTS).clone()
}

/// Drain the report table, returning its contents.
pub fn take_reports() -> Vec<StallReport> {
    std::mem::take(&mut *lock_poisonless(&REPORTS))
}

fn file_report(r: StallReport) {
    COUNTERS.stalls_detected.inc();
    let arg = match r.subject {
        StallSubject::Worker(_, worker) => worker as u64,
        StallSubject::Blocked(_, token) => token,
    };
    emit(EventKind::StallDetected, arg);
    eprintln!("lwt-watchdog: {r}");
    lock_poisonless(&REPORTS).push(r);
    // Post-mortem bundle: armed by LWT_FLIGHTREC, rate-capped inside
    // `dump`. Registered sections put this very report table (and the
    // chaos seed state) into the bundle, so push first, dump after.
    crate::sections::register_flightrec_sections();
    let _ = lwt_metrics::flightrec::dump("stall");
}

// ---------------------------------------------------------------------------
// The detector
// ---------------------------------------------------------------------------

fn ensure_detector() {
    static DETECTOR: OnceLock<()> = OnceLock::new();
    DETECTOR.get_or_init(|| {
        std::thread::Builder::new()
            .name("lwt-watchdog".into())
            .spawn(detector_main)
            .map(|_| ())
            .unwrap_or(()) // spawn failure: watchdog silently inert
    });
}

fn detector_main() {
    loop {
        let interval = INTERVAL_NS.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_nanos(interval));
        if STATE.load(Ordering::Relaxed) != 2 {
            continue;
        }
        let now = now_ns();
        let stall_ns = STALL_NS.load(Ordering::Relaxed);
        let blocked_ns = BLOCKED_NS.load(Ordering::Relaxed);

        let workers: Vec<Arc<BeatSlot>> = {
            let mut w = lock_poisonless(&WORKERS);
            w.retain(|s| !s.retired.load(Ordering::Relaxed));
            w.clone()
        };
        for slot in workers {
            if slot.parked.load(Ordering::Relaxed) {
                // Asleep on purpose; disarm so the first post-wake
                // interval starts a fresh observation.
                slot.flagged.store(false, Ordering::Relaxed);
                continue;
            }
            let silent = now.saturating_sub(slot.last_ns.load(Ordering::Relaxed));
            if silent > stall_ns {
                if !slot.flagged.swap(true, Ordering::Relaxed) {
                    file_report(StallReport {
                        subject: StallSubject::Worker(slot.backend, slot.worker),
                        stuck_ms: silent / 1_000_000,
                    });
                }
            } else {
                // Re-arm: a worker that recovered can be flagged again.
                slot.flagged.store(false, Ordering::Relaxed);
            }
        }

        let overdue: Vec<StallReport> = {
            let mut blocked = lock_poisonless(&BLOCKED);
            blocked
                .iter_mut()
                .flatten()
                .filter(|e| !e.flagged && now.saturating_sub(e.since_ns) > blocked_ns)
                .map(|e| {
                    e.flagged = true;
                    StallReport {
                        subject: StallSubject::Blocked(e.kind, e.token),
                        stuck_ms: now.saturating_sub(e.since_ns) / 1_000_000,
                    }
                })
                .collect()
        };
        for r in overdue {
            file_report(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Watchdog state is process-global; serialize mutating tests.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tight() -> WatchdogConfig {
        WatchdogConfig {
            interval: Duration::from_millis(5),
            worker_stall: Duration::from_millis(40),
            blocked_after: Duration::from_millis(40),
        }
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _s = serial();
        disable_watchdog();
        assert!(block_enter(BlockKind::Feb, 0xAB).is_none());
        let hb = register_worker("test", 0);
        hb.beat(); // must not record anything
        reset_watchdog_to_env();
    }

    #[test]
    fn silent_worker_is_flagged_and_rearms() {
        let _s = serial();
        force_watchdog(tight());
        let hb = register_worker("test-silent", 7);
        std::thread::sleep(Duration::from_millis(120));
        let flagged = reports().into_iter().any(|r| {
            matches!(r.subject, StallSubject::Worker("test-silent", 7))
        });
        assert!(flagged, "silent worker must be reported: {:?}", reports());
        // Recover, then confirm no *new* flag accrues while beating.
        hb.beat();
        let count = reports().len();
        for _ in 0..20 {
            hb.beat();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            reports().len(),
            count,
            "a beating worker must not be re-flagged"
        );
        drop(hb);
        disable_watchdog();
        reset_watchdog_to_env();
    }

    #[test]
    fn parked_worker_is_never_flagged() {
        let _s = serial();
        force_watchdog(tight());
        let hb = register_worker("test-parked", 9);
        hb.set_parked(true);
        // Far past the stall threshold; a parked worker must stay
        // unflagged for as long as it sleeps.
        std::thread::sleep(Duration::from_millis(120));
        let flagged = reports()
            .into_iter()
            .any(|r| matches!(r.subject, StallSubject::Worker("test-parked", 9)));
        assert!(!flagged, "parked worker was flagged: {:?}", reports());
        // Unparking refreshes the heartbeat: still no flag right away.
        hb.set_parked(false);
        std::thread::sleep(Duration::from_millis(15));
        let flagged = reports()
            .into_iter()
            .any(|r| matches!(r.subject, StallSubject::Worker("test-parked", 9)));
        assert!(!flagged, "freshly woken worker must not inherit its sleep");
        drop(hb);
        disable_watchdog();
        reset_watchdog_to_env();
    }

    #[test]
    fn overdue_block_is_reported_once_and_clears_on_drop() {
        let _s = serial();
        force_watchdog(tight());
        let token = 0xDEAD_0001u64;
        let g = block_enter(BlockKind::Join, token).expect("enabled");
        std::thread::sleep(Duration::from_millis(120));
        let hits = reports()
            .into_iter()
            .filter(|r| matches!(r.subject, StallSubject::Blocked(BlockKind::Join, t) if t == token))
            .count();
        assert_eq!(hits, 1, "one overdue wait flags exactly once");
        drop(g);
        // A new short wait on the same token must not be flagged.
        let g2 = block_enter(BlockKind::Join, token).expect("enabled");
        drop(g2);
        std::thread::sleep(Duration::from_millis(30));
        let hits = reports()
            .into_iter()
            .filter(|r| matches!(r.subject, StallSubject::Blocked(BlockKind::Join, t) if t == token))
            .count();
        assert_eq!(hits, 1, "resolved waits must not report");
        disable_watchdog();
        reset_watchdog_to_env();
    }

    #[test]
    fn display_names_both_shapes() {
        let w = StallReport {
            subject: StallSubject::Worker("qthreads", 3),
            stuck_ms: 250,
        };
        assert!(format!("{w}").contains("qthreads worker 3"));
        let b = StallReport {
            subject: StallSubject::Blocked(BlockKind::Feb, 0x10),
            stuck_ms: 99,
        };
        let s = format!("{b}");
        assert!(s.contains("feb") && s.contains("0x10"), "{s}");
    }
}
